(* Unit and property tests for the dm_linalg substrate. *)

module Vec = Dm_linalg.Vec
module Mat = Dm_linalg.Mat
module Chol = Dm_linalg.Chol
module Eigen = Dm_linalg.Eigen

let check_float = Alcotest.(check (float 1e-9))
let check_float_loose = Alcotest.(check (float 1e-6))
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Generators                                                          *)
(* ------------------------------------------------------------------ *)

let small_float = QCheck.float_range (-10.) 10.

let vec_gen n = QCheck.(array_of_size (Gen.return n) small_float)

let sized_vec_gen =
  QCheck.(
    let gen =
      Gen.(
        int_range 1 12 >>= fun n ->
        array_size (return n) (float_range (-10.) 10.))
    in
    make ~print:Print.(array float) gen)

(* A random symmetric positive definite matrix M·Mᵀ + ridge·I. *)
let spd_gen =
  QCheck.(
    let gen =
      Gen.(
        int_range 1 8 >>= fun n ->
        map
          (fun data ->
            let m = Mat.init n n (fun i j -> data.((i * n) + j)) in
            let a = Mat.matmul m (Mat.transpose m) in
            for i = 0 to n - 1 do
              Mat.set a i i (Mat.get a i i +. 0.5)
            done;
            a)
          (array_size (return (n * n)) (float_range (-2.) 2.)))
    in
    make
      ~print:(fun m -> Format.asprintf "%a" Mat.pp m)
      gen)

let prop name count arb f =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name ~count:(Test_env.qcheck_count count) arb f)

(* ------------------------------------------------------------------ *)
(* Vec                                                                 *)
(* ------------------------------------------------------------------ *)

let test_vec_basics () =
  check_int "dim" 3 (Vec.dim (Vec.of_list [ 1.; 2.; 3. ]));
  check_float "dot" 32. (Vec.dot [| 1.; 2.; 3. |] [| 4.; 5.; 6. |]);
  check_float "norm2" 5. (Vec.norm2 [| 3.; 4. |]);
  check_float "norm1" 7. (Vec.norm1 [| 3.; -4. |]);
  check_float "norm_inf" 4. (Vec.norm_inf [| 3.; -4. |]);
  check_float "sum" 6. (Vec.sum [| 1.; 2.; 3. |]);
  check_float "mean" 2. (Vec.mean [| 1.; 2.; 3. |]);
  check_float "dist2" 5. (Vec.dist2 [| 0.; 0. |] [| 3.; 4. |]);
  check_float "max" 3. (Vec.max_elt [| 1.; 3.; 2. |]);
  check_float "min" 1. (Vec.min_elt [| 1.; 3.; 2. |]);
  check_int "argmax" 1 (Vec.argmax [| 1.; 3.; 2. |]);
  check_int "argmin" 0 (Vec.argmin [| 1.; 3.; 2. |])

let test_vec_basis () =
  let e1 = Vec.basis 3 1 in
  check_float "component" 1. (Vec.get e1 1);
  check_float "others" 0. (Vec.get e1 0);
  check_float "unit norm" 1. (Vec.norm2 e1);
  Alcotest.check_raises "out of range" (Invalid_argument "Vec.basis: index out of range")
    (fun () -> ignore (Vec.basis 3 3))

let test_vec_ops () =
  let u = [| 1.; 2. |] and v = [| 3.; 5. |] in
  check_bool "add" true (Vec.approx_equal (Vec.add u v) [| 4.; 7. |]);
  check_bool "sub" true (Vec.approx_equal (Vec.sub v u) [| 2.; 3. |]);
  check_bool "scale" true (Vec.approx_equal (Vec.scale 2. u) [| 2.; 4. |]);
  check_bool "neg" true (Vec.approx_equal (Vec.neg u) [| -1.; -2. |]);
  let y = Vec.copy v in
  Vec.axpy 2. u y;
  check_bool "axpy" true (Vec.approx_equal y [| 5.; 9. |])

let test_vec_normalize () =
  let v = Vec.normalize [| 3.; 4. |] in
  check_float "unit" 1. (Vec.norm2 v);
  Alcotest.check_raises "zero vector" (Invalid_argument "Vec.normalize: zero vector")
    (fun () -> ignore (Vec.normalize [| 0.; 0. |]))

let test_vec_mismatch () =
  Alcotest.check_raises "dot mismatch"
    (Invalid_argument "Vec.dot: dimension mismatch (2 vs 3)") (fun () ->
      ignore (Vec.dot [| 1.; 2. |] [| 1.; 2.; 3. |]))

let test_vec_slice_sort () =
  let v = [| 5.; 1.; 4.; 2. |] in
  check_bool "sorted" true (Vec.approx_equal (Vec.sorted v) [| 1.; 2.; 4.; 5. |]);
  check_bool "slice" true
    (Vec.approx_equal (Vec.slice v ~pos:1 ~len:2) [| 1.; 4. |]);
  check_bool "concat" true
    (Vec.approx_equal (Vec.concat [| 1. |] [| 2. |]) [| 1.; 2. |]);
  (* sorted must not mutate its input *)
  check_float "input intact" 5. v.(0)

let vec_props =
  [
    prop "dot is symmetric" 200 sized_vec_gen (fun v ->
        let u = Vec.map (fun x -> x +. 1.) v in
        abs_float (Vec.dot u v -. Vec.dot v u) < 1e-9);
    prop "cauchy-schwarz" 200 sized_vec_gen (fun v ->
        let u = Vec.map (fun x -> (2. *. x) -. 1.) v in
        abs_float (Vec.dot u v) <= (Vec.norm2 u *. Vec.norm2 v) +. 1e-6);
    prop "triangle inequality" 200 sized_vec_gen (fun v ->
        let u = Vec.map (fun x -> x *. 0.5) v in
        Vec.norm2 (Vec.add u v) <= Vec.norm2 u +. Vec.norm2 v +. 1e-6);
    prop "norm ordering: inf <= 2 <= 1" 200 sized_vec_gen (fun v ->
        Vec.norm_inf v <= Vec.norm2 v +. 1e-9
        && Vec.norm2 v <= Vec.norm1 v +. 1e-9);
    prop "normalize yields unit norm" 200 sized_vec_gen (fun v ->
        QCheck.assume (Vec.norm2 v > 1e-6);
        abs_float (Vec.norm2 (Vec.normalize v) -. 1.) < 1e-9);
    prop "scale distributes over dot" 200 sized_vec_gen (fun v ->
        let a = 3.5 in
        abs_float (Vec.dot (Vec.scale a v) v -. (a *. Vec.dot v v)) < 1e-6);
  ]

(* ------------------------------------------------------------------ *)
(* Mat                                                                 *)
(* ------------------------------------------------------------------ *)

let test_mat_identity () =
  let i3 = Mat.identity 3 in
  let x = [| 1.; 2.; 3. |] in
  check_bool "I·x = x" true (Vec.approx_equal (Mat.matvec i3 x) x);
  check_float "trace" 3. (Mat.trace i3);
  check_bool "scaled identity" true
    (Mat.approx_equal (Mat.scaled_identity 2 4.) (Mat.scale 4. (Mat.identity 2)))

let test_mat_matvec () =
  let a = Mat.of_arrays [| [| 1.; 2. |]; [| 3.; 4. |] |] in
  check_bool "matvec" true
    (Vec.approx_equal (Mat.matvec a [| 1.; 1. |]) [| 3.; 7. |]);
  check_bool "matvec_t" true
    (Vec.approx_equal (Mat.matvec_t a [| 1.; 1. |]) [| 4.; 6. |]);
  check_bool "matvec_t = (transpose)·v" true
    (Vec.approx_equal
       (Mat.matvec (Mat.transpose a) [| 1.; 1. |])
       (Mat.matvec_t a [| 1.; 1. |]))

let test_mat_matmul () =
  let a = Mat.of_arrays [| [| 1.; 2. |]; [| 3.; 4. |] |] in
  let b = Mat.of_arrays [| [| 0.; 1. |]; [| 1.; 0. |] |] in
  let ab = Mat.matmul a b in
  check_bool "swap columns" true
    (Mat.approx_equal ab (Mat.of_arrays [| [| 2.; 1. |]; [| 4.; 3. |] |]))

let test_mat_quad () =
  let a = Mat.of_arrays [| [| 2.; 1. |]; [| 1.; 3. |] |] in
  let x = [| 1.; 2. |] in
  (* xᵀAx = 2 + 2 + 2 + 12 = 18 *)
  check_float "quad" 18. (Mat.quad a x);
  check_float "quad = dot x (A x)" (Vec.dot x (Mat.matvec a x)) (Mat.quad a x)

let test_mat_rank_one () =
  let a = Mat.identity 2 in
  Mat.rank_one_update a 2. [| 1.; 1. |];
  check_bool "rank one" true
    (Mat.approx_equal a (Mat.of_arrays [| [| 3.; 2. |]; [| 2.; 3. |] |]))

let test_mat_outer () =
  let o = Mat.outer [| 1.; 2. |] [| 3.; 4. |] in
  check_bool "outer" true
    (Mat.approx_equal o (Mat.of_arrays [| [| 3.; 4. |]; [| 6.; 8. |] |]))

let test_mat_symmetrize () =
  let a = Mat.of_arrays [| [| 1.; 2. |]; [| 4.; 1. |] |] in
  check_bool "asymmetric" false (Mat.is_symmetric a);
  Mat.symmetrize_inplace a;
  check_bool "symmetrized" true (Mat.is_symmetric a);
  check_float "averaged" 3. (Mat.get a 0 1)

let test_mat_ragged () =
  Alcotest.check_raises "ragged" (Invalid_argument "Mat.of_arrays: ragged rows")
    (fun () -> ignore (Mat.of_arrays [| [| 1. |]; [| 1.; 2. |] |]))

let test_mat_row_col_diag () =
  let a = Mat.of_arrays [| [| 1.; 2. |]; [| 3.; 4. |] |] in
  check_bool "row" true (Vec.approx_equal (Mat.row a 1) [| 3.; 4. |]);
  check_bool "col" true (Vec.approx_equal (Mat.col a 1) [| 2.; 4. |]);
  check_bool "diag" true (Vec.approx_equal (Mat.diag a) [| 1.; 4. |]);
  check_bool "diag_of_vec" true
    (Mat.approx_equal
       (Mat.diag_of_vec [| 1.; 4. |])
       (Mat.of_arrays [| [| 1.; 0. |]; [| 0.; 4. |] |]))

let mat_props =
  [
    prop "quad agrees with matvec+dot" 100 spd_gen (fun a ->
        let n = Mat.rows a in
        let x = Array.init n (fun i -> float_of_int (i + 1) /. 3.) in
        abs_float (Mat.quad a x -. Vec.dot x (Mat.matvec a x)) < 1e-6);
    prop "spd gen is symmetric positive definite" 100 spd_gen (fun a ->
        Mat.is_symmetric ~tol:1e-9 a && Chol.is_positive_definite a);
    prop "transpose involutive" 100 spd_gen (fun a ->
        Mat.approx_equal (Mat.transpose (Mat.transpose a)) a);
    prop "trace invariant under transpose" 100 spd_gen (fun a ->
        abs_float (Mat.trace a -. Mat.trace (Mat.transpose a)) < 1e-9);
    prop "rank_one_update matches outer add" 100 spd_gen (fun a ->
        let n = Mat.rows a in
        let b = Array.init n (fun i -> 0.3 *. float_of_int (i - 1)) in
        let via_update = Mat.copy a in
        Mat.rank_one_update via_update (-0.7) b;
        let via_outer = Mat.add a (Mat.scale (-0.7) (Mat.outer b b)) in
        Mat.approx_equal ~tol:1e-9 via_update via_outer);
  ]

(* ------------------------------------------------------------------ *)
(* Chol                                                                *)
(* ------------------------------------------------------------------ *)

let test_chol_known () =
  (* A = [[4,2],[2,3]] has L = [[2,0],[1,sqrt 2]]. *)
  let a = Mat.of_arrays [| [| 4.; 2. |]; [| 2.; 3. |] |] in
  let l = Chol.factorize a in
  check_float "l00" 2. (Mat.get l 0 0);
  check_float "l10" 1. (Mat.get l 1 0);
  check_float "l11" (sqrt 2.) (Mat.get l 1 1);
  check_float "l01 zero" 0. (Mat.get l 0 1)

let test_chol_solve () =
  let a = Mat.of_arrays [| [| 4.; 2. |]; [| 2.; 3. |] |] in
  let x = [| 1.; -2. |] in
  let b = Mat.matvec a x in
  check_bool "roundtrip" true (Vec.approx_equal ~tol:1e-9 (Chol.solve a b) x)

let test_chol_not_pd () =
  let indefinite = Mat.of_arrays [| [| 1.; 2. |]; [| 2.; 1. |] |] in
  check_bool "indefinite" false (Chol.is_positive_definite indefinite);
  (* Singular but PSD: the ridge retry path must still produce a finite
     solution of the regularized system. *)
  let singular = Mat.of_arrays [| [| 1.; 1. |]; [| 1.; 1. |] |] in
  check_bool "singular detected" false (Chol.is_positive_definite singular);
  let x = Chol.solve_regularized singular [| 1.; 1. |] in
  check_bool "regularized solves singular PSD" true
    (Array.for_all Float.is_finite x)

let test_chol_log_det () =
  let a = Mat.scaled_identity 3 2. in
  check_float "log det of 2I₃" (3. *. log 2.) (Chol.log_det a)

let chol_props =
  [
    prop "solve inverts matvec" 100 spd_gen (fun a ->
        let n = Mat.rows a in
        let x = Array.init n (fun i -> float_of_int (i + 1)) in
        let b = Mat.matvec a x in
        Vec.approx_equal ~tol:1e-5 (Chol.solve a b) x);
    prop "L·Lᵀ reconstructs A" 100 spd_gen (fun a ->
        let l = Chol.factorize a in
        Mat.approx_equal ~tol:1e-7 (Mat.matmul l (Mat.transpose l)) a);
    prop "log_det matches eigenvalue sum" 60 spd_gen (fun a ->
        let ev = Eigen.eigenvalues a in
        let sum = Array.fold_left (fun acc l -> acc +. log l) 0. ev in
        abs_float (Chol.log_det a -. sum) < 1e-5);
  ]

(* ------------------------------------------------------------------ *)
(* Lu                                                                  *)
(* ------------------------------------------------------------------ *)

module Lu = Dm_linalg.Lu

let general_gen =
  QCheck.(
    let gen =
      Gen.(
        int_range 1 8 >>= fun n ->
        map
          (fun data ->
            let m = Mat.init n n (fun i j -> data.((i * n) + j)) in
            (* Diagonal boost keeps random matrices comfortably
               non-singular. *)
            for i = 0 to n - 1 do
              Mat.set m i i (Mat.get m i i +. 3.)
            done;
            m)
          (array_size (return (n * n)) (float_range (-1.) 1.)))
    in
    make ~print:(fun m -> Format.asprintf "%a" Mat.pp m) gen)

let test_lu_known () =
  (* A 2x2 with known inverse and determinant. *)
  let a = Mat.of_arrays [| [| 4.; 7. |]; [| 2.; 6. |] |] in
  check_float "determinant" 10. (Lu.determinant a);
  let inv = Lu.inverse a in
  check_bool "inverse" true
    (Mat.approx_equal ~tol:1e-9 inv
       (Mat.of_arrays [| [| 0.6; -0.7 |]; [| -0.2; 0.4 |] |]))

let test_lu_pivoting () =
  (* Zero leading pivot forces a row swap. *)
  let a = Mat.of_arrays [| [| 0.; 1. |]; [| 1.; 0. |] |] in
  check_float "permutation determinant" (-1.) (Lu.determinant a);
  check_bool "solve through pivot" true
    (Vec.approx_equal (Lu.solve_matrix a [| 3.; 5. |]) [| 5.; 3. |])

let test_lu_singular () =
  let a = Mat.of_arrays [| [| 1.; 2. |]; [| 2.; 4. |] |] in
  check_float "singular determinant" 0. (Lu.determinant a);
  check_bool "factorize raises" true
    (match Lu.factorize a with
    | _ -> false
    | exception Lu.Singular _ -> true)

let lu_props =
  [
    prop "solve inverts matvec (general)" 100 general_gen (fun a ->
        let n = Mat.rows a in
        let x = Array.init n (fun i -> float_of_int (i - 2)) in
        let b = Mat.matvec a x in
        Vec.approx_equal ~tol:1e-6 (Lu.solve_matrix a b) x);
    prop "A·A⁻¹ = I" 100 general_gen (fun a ->
        let n = Mat.rows a in
        Mat.approx_equal ~tol:1e-7 (Mat.matmul a (Lu.inverse a)) (Mat.identity n));
    prop "LU and Cholesky determinants agree on SPD" 60 spd_gen (fun a ->
        let via_chol = exp (Chol.log_det a) in
        abs_float (Lu.determinant a -. via_chol) < 1e-6 *. (1. +. via_chol));
    prop "determinant is multiplicative" 60 general_gen (fun a ->
        let b = Mat.transpose a in
        let dab = Lu.determinant (Mat.matmul a b) in
        let da = Lu.determinant a and db = Lu.determinant b in
        abs_float (dab -. (da *. db)) < 1e-5 *. (1. +. abs_float dab));
  ]

(* ------------------------------------------------------------------ *)
(* Eigen                                                               *)
(* ------------------------------------------------------------------ *)

let test_eigen_diag () =
  let a = Mat.diag_of_vec [| 3.; 1.; 2. |] in
  let ev = Eigen.eigenvalues a in
  check_bool "sorted eigenvalues" true
    (Vec.approx_equal ev [| 3.; 2.; 1. |])

let test_eigen_known_2x2 () =
  (* [[2,1],[1,2]] has eigenvalues 3 and 1. *)
  let a = Mat.of_arrays [| [| 2.; 1. |]; [| 1.; 2. |] |] in
  let ev = Eigen.eigenvalues a in
  check_float_loose "largest" 3. ev.(0);
  check_float_loose "smallest" 1. ev.(1);
  check_float_loose "smallest fn" 1. (Eigen.smallest_eigenvalue a);
  check_float_loose "largest fn" 3. (Eigen.largest_eigenvalue a);
  check_float_loose "condition" 3. (Eigen.condition_number a)

let test_eigen_not_symmetric () =
  let a = Mat.of_arrays [| [| 1.; 5. |]; [| 0.; 1. |] |] in
  check_bool "raises" true
    (match Eigen.decompose a with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_eigen_log_volume () =
  (* log √(det (2I₃)) = 1.5 log 2 *)
  check_float_loose "log volume of 2I₃" (1.5 *. log 2.)
    (Eigen.log_volume_factor (Mat.scaled_identity 3 2.))

let eigen_props =
  [
    prop "V·diag(λ)·Vᵀ reconstructs A" 60 spd_gen (fun a ->
        let { Eigen.eigenvalues = ev; eigenvectors = v } = Eigen.decompose a in
        let recon = Mat.matmul (Mat.matmul v (Mat.diag_of_vec ev)) (Mat.transpose v) in
        Mat.approx_equal ~tol:1e-6 recon a);
    prop "eigenvectors are orthonormal" 60 spd_gen (fun a ->
        let { Eigen.eigenvectors = v; _ } = Eigen.decompose a in
        let g = Mat.matmul (Mat.transpose v) v in
        Mat.approx_equal ~tol:1e-7 g (Mat.identity (Mat.rows a)));
    prop "eigenvalue sum equals trace" 60 spd_gen (fun a ->
        let ev = Eigen.eigenvalues a in
        abs_float (Vec.sum ev -. Mat.trace a) < 1e-6);
    prop "spd eigenvalues are positive" 60 spd_gen (fun a ->
        Array.for_all (fun l -> l > 0.) (Eigen.eigenvalues a));
    prop "rayleigh quotient bounded by extreme eigenvalues" 60 spd_gen
      (fun a ->
        let n = Mat.rows a in
        let x = Array.init n (fun i -> cos (float_of_int i)) in
        QCheck.assume (Vec.norm2 x > 1e-6);
        let r = Mat.quad a x /. Vec.dot x x in
        let ev = Eigen.eigenvalues a in
        r <= ev.(0) +. 1e-6 && r >= ev.(n - 1) -. 1e-6);
  ]

(* ------------------------------------------------------------------ *)
(* Pool + tiled kernels                                                *)
(* ------------------------------------------------------------------ *)

module Pool = Dm_linalg.Pool

(* Bit-for-bit equality: the kernels promise results identical to the
   serial reference at any worker count, not merely close. *)
let bits_equal_vec a b =
  Array.length a = Array.length b
  && Array.for_all2
       (fun x y -> Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y))
       a b

let bits_equal_mat a b =
  Mat.dims a = Mat.dims b && bits_equal_vec a.Mat.data b.Mat.data

let with_default_pool jobs f =
  Pool.with_pool ~jobs (fun p ->
      Pool.set_default (Some p);
      Fun.protect ~finally:(fun () -> Pool.set_default None) f)

(* Naive references: the exact element-wise reduction orders the
   kernels contract to reproduce (ascending j / ascending k, with the
   same exact-zero skips). *)
let naive_matvec m x =
  Array.init (Mat.rows m) (fun i ->
      let acc = ref 0. in
      for j = 0 to Mat.cols m - 1 do
        acc := !acc +. (Mat.get m i j *. x.(j))
      done;
      !acc)

let naive_matmul a b =
  let c = Mat.zeros (Mat.rows a) (Mat.cols b) in
  for i = 0 to Mat.rows a - 1 do
    for k = 0 to Mat.cols a - 1 do
      let aik = Mat.get a i k in
      if aik <> 0. then
        for j = 0 to Mat.cols b - 1 do
          Mat.set c i j (Mat.get c i j +. (aik *. Mat.get b k j))
        done
    done
  done;
  c

let naive_quad m x =
  let acc = ref 0. in
  for i = 0 to Mat.rows m - 1 do
    if x.(i) <> 0. then begin
      let rowacc = ref 0. in
      for j = 0 to Mat.cols m - 1 do
        rowacc := !rowacc +. (Mat.get m i j *. x.(j))
      done;
      acc := !acc +. (x.(i) *. !rowacc)
    end
  done;
  !acc

let naive_rank_one a beta b =
  let m = Mat.copy a in
  for i = 0 to Mat.rows m - 1 do
    let bi = beta *. b.(i) in
    if bi <> 0. then
      for j = 0 to Mat.cols m - 1 do
        Mat.set m i j (Mat.get m i j +. (bi *. b.(j)))
      done
  done;
  m

let naive_rescale a ~beta ~b ~factor =
  Mat.init (Mat.rows a) (Mat.cols a) (fun i j ->
      if b.(i) <> 0. then
        factor *. (Mat.get a i j +. (beta *. (b.(i) *. b.(j))))
      else factor *. Mat.get a i j)

(* Deterministic fill with exact zeros sprinkled in, so the sparse
   fast paths and the zero-skip branches are all exercised. *)
let fill_mat n seed =
  Mat.init n n (fun i j ->
      if (i + (3 * j) + seed) mod 4 = 0 then 0.
      else sin (float_of_int (((i * 31) + (j * 17) + seed) mod 101)))

let fill_vec ~sparse n seed =
  Array.init n (fun i ->
      if sparse && (i + seed) mod 8 <> 0 then 0.
      else cos (float_of_int (((i * 13) + seed) mod 97)))

let check_kernels_at n =
  let a = fill_mat n 1 in
  let b = fill_mat n 2 in
  let xs = [ fill_vec ~sparse:false n 3; fill_vec ~sparse:true n 4 ] in
  let v = fill_vec ~sparse:false n 5 in
  (* Serial references, computed with no pool installed. *)
  let mv_ref = List.map (naive_matvec a) xs in
  let mm_ref = naive_matmul a b in
  let q_ref = List.map (naive_quad a) xs in
  let r1_ref = naive_rank_one a (-0.37) v in
  let rs_ref = naive_rescale a ~beta:(-0.37) ~b:v ~factor:1.013 in
  let check jobs () =
    let tag s = Printf.sprintf "%s n=%d jobs=%d" s n jobs in
    List.iter2
      (fun x r -> check_bool (tag "matvec") true (bits_equal_vec (Mat.matvec a x) r))
      xs mv_ref;
    check_bool (tag "matmul") true (bits_equal_mat (Mat.matmul a b) mm_ref);
    List.iter2
      (fun x r ->
        check_bool (tag "quad") true
          (Int64.equal (Int64.bits_of_float (Mat.quad a x)) (Int64.bits_of_float r)))
      xs q_ref;
    let upd = Mat.copy a in
    Mat.rank_one_update upd (-0.37) v;
    check_bool (tag "rank_one_update") true (bits_equal_mat upd r1_ref);
    let into = Mat.zeros n n in
    check_bool (tag "rank_one_rescale") true
      (bits_equal_mat
         (Mat.rank_one_rescale ~into a ~beta:(-0.37) ~b:v ~factor:1.013)
         rs_ref);
    check_bool (tag "rank_one_rescale alloc") true
      (bits_equal_mat
         (Mat.rank_one_rescale a ~beta:(-0.37) ~b:v ~factor:1.013)
         rs_ref)
  in
  check 1 ();
  List.iter (fun jobs -> with_default_pool jobs (check jobs)) [ 1; 2; 4 ]

let test_kernels_small () = List.iter check_kernels_at [ 1; 2; 7; 40 ]

(* Straddle the n >= 512 pooling threshold: 511 stays serial (and is
   not a multiple of the 64-row chunk), 512 fans out over the pool. *)
let test_kernels_threshold () = List.iter check_kernels_at [ 511; 512 ]

let test_rescale_symmetry () =
  (* The fused kernel's beta·(bᵢ·bⱼ) association keeps exact symmetry:
     no symmetrize pass needed after a cut. *)
  let a = Mat.matmul (fill_mat 33 6) (Mat.transpose (fill_mat 33 6)) in
  let b = fill_vec ~sparse:false 33 7 in
  let c = Mat.rank_one_rescale a ~beta:(-0.81) ~b ~factor:1.07 in
  let ok = ref true in
  for i = 0 to 32 do
    for j = 0 to 32 do
      if
        not
          (Int64.equal
             (Int64.bits_of_float (Mat.get c i j))
             (Int64.bits_of_float (Mat.get c j i)))
      then ok := false
    done
  done;
  check_bool "bit-exact symmetry" true !ok

let test_rescale_validation () =
  let a = Mat.identity 3 in
  Alcotest.check_raises "into dimension mismatch"
    (Invalid_argument "Mat.rank_one_rescale: into dimension mismatch")
    (fun () ->
      ignore
        (Mat.rank_one_rescale ~into:(Mat.zeros 2 2) a ~beta:1. ~b:[| 1.; 0.; 0. |]
           ~factor:1.));
  Alcotest.check_raises "into aliases input"
    (Invalid_argument "Mat.rank_one_rescale: into aliases the input")
    (fun () ->
      ignore (Mat.rank_one_rescale ~into:a a ~beta:1. ~b:[| 1.; 0.; 0. |] ~factor:1.))

let test_pool_basics () =
  Pool.with_pool ~jobs:4 (fun p ->
      check_int "size" 4 (Pool.size p);
      (* parallel_for covers [0, n) exactly once whatever the chunking. *)
      let n = 1000 in
      let hits = Array.make n 0 in
      Pool.parallel_for p ~chunk:7 n (fun lo hi ->
          for i = lo to hi - 1 do
            hits.(i) <- hits.(i) + 1
          done);
      check_bool "each index once" true (Array.for_all (fun c -> c = 1) hits);
      (* Lowest-chunk exception wins and the pool stays usable. *)
      check_bool "lowest failing chunk" true
        (match
           Pool.parallel_for p ~chunk:1 16 (fun lo _ ->
               if lo >= 3 then failwith (string_of_int lo))
         with
        | () -> false
        | exception Failure s -> s = "3");
      let again = Array.make 64 0 in
      Pool.parallel_for p ~chunk:4 64 (fun lo hi ->
          for i = lo to hi - 1 do
            again.(i) <- 1
          done);
      check_bool "usable after error" true (Array.for_all (fun c -> c = 1) again);
      (* Nested parallel_for runs inline rather than deadlocking. *)
      let nested_ok = ref true in
      Pool.parallel_for p ~chunk:1 4 (fun _ _ ->
          let local = Array.make 8 0 in
          Pool.parallel_for p ~chunk:2 8 (fun lo hi ->
              for i = lo to hi - 1 do
                local.(i) <- 1
              done);
          if not (Array.for_all (fun c -> c = 1) local) then nested_ok := false);
      check_bool "nested runs inline" true !nested_ok);
  Alcotest.check_raises "jobs must be positive"
    (Invalid_argument "Pool.create: jobs must be positive") (fun () ->
      ignore (Pool.create ~jobs:0))

let pool_props =
  [
    prop "kernels bit-match naive reference under a pool" 30
      QCheck.(pair (int_range 1 24) (int_range 0 1000))
      (fun (n, seed) ->
        let a = fill_mat n seed in
        let x = fill_vec ~sparse:(seed mod 2 = 0) n (seed + 1) in
        let mv = naive_matvec a x in
        let q = naive_quad a x in
        let rs = naive_rescale a ~beta:(-0.37) ~b:x ~factor:1.013 in
        with_default_pool 2 (fun () ->
            bits_equal_vec (Mat.matvec a x) mv
            && Int64.equal
                 (Int64.bits_of_float (Mat.quad a x))
                 (Int64.bits_of_float q)
            && bits_equal_mat
                 (Mat.rank_one_rescale a ~beta:(-0.37) ~b:x ~factor:1.013)
                 rs));
  ]

(* ------------------------------------------------------------------ *)
(* Projection kernel family (matvec_t / project / project_t /          *)
(* matmul_tt)                                                          *)
(* ------------------------------------------------------------------ *)

(* The kernels contract to a fixed ascending reduction order per
   output element, so one no-skip naive reference covers every path:
   skipping exactly-zero terms cannot change a finite IEEE sum's bits
   (the running sum is never −0). *)
let fill_rect k n seed =
  Mat.init k n (fun i j ->
      if (i + (3 * j) + seed) mod 4 = 0 then 0.
      else sin (float_of_int (((i * 31) + (j * 17) + seed) mod 101)))

let naive_project p x =
  Array.init (Mat.rows p) (fun i ->
      let acc = ref 0. in
      for j = 0 to Mat.cols p - 1 do
        acc := !acc +. (Mat.get p i j *. x.(j))
      done;
      !acc)

let naive_project_t p y =
  Array.init (Mat.cols p) (fun j ->
      let acc = ref 0. in
      for i = 0 to Mat.rows p - 1 do
        acc := !acc +. (Mat.get p i j *. y.(i))
      done;
      !acc)

let naive_matmul_tt a b =
  Mat.init (Mat.rows a) (Mat.rows b) (fun i j ->
      let acc = ref 0. in
      for l = 0 to Mat.cols a - 1 do
        acc := !acc +. (Mat.get a i l *. Mat.get b j l)
      done;
      !acc)

let check_projection_at (k, n) =
  let p = fill_rect k n 1 in
  let b = fill_rect (max 1 ((k / 2) + 1)) n 2 in
  let xs = [ fill_vec ~sparse:false n 3; fill_vec ~sparse:true n 4 ] in
  let y = fill_vec ~sparse:false k 5 in
  let sq = fill_rect n n 6 in
  let proj_ref = List.map (naive_project p) xs in
  let projt_ref = naive_project_t p y in
  let mvt_ref = List.map (naive_project_t sq) xs in
  let tt_ref = naive_matmul_tt p b in
  let check jobs () =
    let tag s = Printf.sprintf "%s k=%d n=%d jobs=%d" s k n jobs in
    List.iter2
      (fun x r ->
        check_bool (tag "project") true (bits_equal_vec (Mat.project p x) r);
        let into = Vec.zeros k in
        check_bool (tag "project ~into") true
          (bits_equal_vec (Mat.project ~into p x) r))
      xs proj_ref;
    check_bool (tag "project_t") true
      (bits_equal_vec (Mat.project_t p y) projt_ref);
    let into = Vec.zeros n in
    check_bool (tag "project_t ~into") true
      (bits_equal_vec (Mat.project_t ~into p y) projt_ref);
    List.iter2
      (fun x r ->
        check_bool (tag "matvec_t") true (bits_equal_vec (Mat.matvec_t sq x) r))
      xs mvt_ref;
    check_bool (tag "matvec_t = project_t (square)") true
      (bits_equal_vec
         (Mat.matvec_t sq (List.hd xs))
         (Mat.project_t sq (List.hd xs)));
    check_bool (tag "matmul_tt") true (bits_equal_mat (Mat.matmul_tt p b) tt_ref)
  in
  check 0 ();
  List.iter (fun jobs -> with_default_pool jobs (check jobs)) [ 1; 2; 4 ]

let test_projection_small () =
  List.iter check_projection_at [ (1, 1); (2, 5); (3, 7); (8, 8); (5, 40) ]

(* Straddle the pooling gates: cols 511/512 (matvec_t, project_t and
   the either-dimension project gate) and rows 512 (project and the
   matmul_tt row fan-out). *)
let test_projection_threshold () =
  List.iter check_projection_at [ (3, 511); (3, 512); (512, 3); (96, 520) ]

let test_projection_validation () =
  let p = fill_rect 2 3 1 in
  Alcotest.check_raises "project dimension mismatch"
    (Invalid_argument "Mat.project: dimension mismatch") (fun () ->
      ignore (Mat.project p [| 1.; 2. |]));
  Alcotest.check_raises "project into mismatch"
    (Invalid_argument "Mat.project: into dimension mismatch") (fun () ->
      ignore (Mat.project ~into:(Vec.zeros 3) p [| 1.; 2.; 3. |]));
  Alcotest.check_raises "project_t dimension mismatch"
    (Invalid_argument "Mat.project_t: dimension mismatch") (fun () ->
      ignore (Mat.project_t p [| 1.; 2.; 3. |]));
  Alcotest.check_raises "project_t into mismatch"
    (Invalid_argument "Mat.project_t: into dimension mismatch") (fun () ->
      ignore (Mat.project_t ~into:(Vec.zeros 2) p [| 1.; 2. |]));
  Alcotest.check_raises "matmul_tt dimension mismatch"
    (Invalid_argument "Mat.matmul_tt: dimension mismatch") (fun () ->
      ignore (Mat.matmul_tt p (fill_rect 2 4 2)));
  (* Aliasing is only expressible on square shapes; it must be caught,
     not silently overwritten mid-reduction. *)
  let s = fill_rect 3 3 4 in
  let x = [| 1.; 2.; 3. |] in
  Alcotest.check_raises "project into aliases input"
    (Invalid_argument "Mat.project: into aliases the input") (fun () ->
      ignore (Mat.project ~into:x s x));
  Alcotest.check_raises "project_t into aliases input"
    (Invalid_argument "Mat.project_t: into aliases the input") (fun () ->
      ignore (Mat.project_t ~into:x s x))

let projection_props =
  [
    prop "projection kernels bit-match naive reference under a pool" 60
      QCheck.(triple (int_range 1 12) (int_range 1 48) (int_range 0 1000))
      (fun (k, n, seed) ->
        let p = fill_rect k n seed in
        let b = fill_rect (max 1 (k - 1)) n (seed + 1) in
        let x = fill_vec ~sparse:(seed mod 2 = 0) n (seed + 2) in
        let y = fill_vec ~sparse:(seed mod 3 = 0) k (seed + 3) in
        let pr = naive_project p x in
        let ptr = naive_project_t p y in
        let ttr = naive_matmul_tt p b in
        with_default_pool 2 (fun () ->
            bits_equal_vec (Mat.project p x) pr
            && bits_equal_vec (Mat.project_t p y) ptr
            && bits_equal_mat (Mat.matmul_tt p b) ttr));
    prop "matmul_tt agrees with matmul against the transpose" 60
      QCheck.(triple (int_range 1 10) (int_range 1 24) (int_range 0 1000))
      (fun (k, n, seed) ->
        let a = fill_rect k n seed in
        let b = fill_rect (max 1 (k / 2)) n (seed + 5) in
        Mat.approx_equal ~tol:1e-9 (Mat.matmul_tt a b)
          (Mat.matmul a (Mat.transpose b)));
    prop "matvec_t bit-matches matvec of the transpose's reduction" 60
      QCheck.(pair (int_range 1 32) (int_range 0 1000))
      (fun (n, seed) ->
        let a = fill_rect n n seed in
        let x = fill_vec ~sparse:(seed mod 2 = 0) n (seed + 1) in
        bits_equal_vec (Mat.matvec_t a x) (naive_project_t a x));
  ]

(* ------------------------------------------------------------------ *)
(* Vec.Sparse views + sparse-aware kernels                             *)
(* ------------------------------------------------------------------ *)

let test_sparse_view () =
  let x = Array.make 16 0. in
  x.(1) <- 3.;
  x.(4) <- -2.;
  (match Vec.Sparse.of_dense x with
  | None -> Alcotest.fail "2/16 density must pass the 0.125 threshold"
  | Some s ->
      check_int "dim" 16 (Vec.Sparse.dim s);
      check_int "nnz" 2 (Vec.Sparse.nnz s);
      check_float "density" 0.125 (Vec.Sparse.density s);
      check_bool "ascending idx" true (s.Vec.Sparse.idx = [| 1; 4 |]);
      check_bool "values" true (s.Vec.Sparse.value = [| 3.; -2. |]);
      check_bool "round-trip" true (bits_equal_vec (Vec.Sparse.to_dense s) x));
  (* A dense vector is rejected by the threshold but not by [gather]. *)
  check_bool "dense rejected" true (Vec.Sparse.of_dense (Vec.ones 4) = None);
  check_int "gather ignores threshold" 4 (Vec.Sparse.nnz (Vec.Sparse.gather (Vec.ones 4)));
  (* −0. entries are exact zeros and must not be gathered. *)
  check_int "negative zero skipped" 1
    (Vec.Sparse.nnz (Vec.Sparse.gather [| -0.; 5.; 0. |]));
  Alcotest.check_raises "non-positive max_density"
    (Invalid_argument "Vec.Sparse.of_dense: max_density must be positive")
    (fun () -> ignore (Vec.Sparse.of_dense ~max_density:0. (Vec.ones 4)))

(* The sparse kernels promise bit-identity with their dense
   counterparts on the gathered vector, at any dimension and worker
   count (the dense side may pool, the sparse side is serial). *)
let check_sparse_kernels_at n =
  let a = fill_mat n 1 in
  let x = fill_vec ~sparse:true n 4 in
  let sx = Vec.Sparse.gather x in
  let check jobs () =
    let tag s = Printf.sprintf "%s n=%d jobs=%d" s n jobs in
    check_bool (tag "matvec_sparse") true
      (bits_equal_vec (Mat.matvec_sparse a sx) (Mat.matvec a x));
    check_bool (tag "quad_sparse") true
      (Int64.equal
         (Int64.bits_of_float (Mat.quad_sparse a sx))
         (Int64.bits_of_float (Mat.quad a x)));
    check_bool (tag "dot_dense") true
      (Int64.equal
         (Int64.bits_of_float (Vec.Sparse.dot_dense sx (Mat.row a 0)))
         (Int64.bits_of_float (Vec.dot x (Mat.row a 0))))
  in
  check 0 ();
  List.iter (fun jobs -> with_default_pool jobs (check jobs)) [ 1; 2; 4 ]

let test_sparse_kernels_small () = List.iter check_sparse_kernels_at [ 1; 2; 7; 40 ]

let test_sparse_kernels_threshold () =
  List.iter check_sparse_kernels_at [ 511; 512 ]

let test_sparse_rescale () =
  (* In-place sparse rank-one vs the allocating dense rescale at
     factor 1 (1.0·x is IEEE-exact, so the dense result is the pure
     rank-one update): identical bits on the matrix, and the returned
     scalar is exactly factor·scale. *)
  let n = 40 in
  let a = Mat.matmul (fill_mat n 2) (Mat.transpose (fill_mat n 2)) in
  let b = fill_vec ~sparse:true n 9 in
  let sb = Vec.Sparse.gather b in
  let mutated = Mat.copy a in
  let scale' =
    Mat.rank_one_rescale_sparse mutated ~beta:(-0.43) ~b:sb ~factor:1.07
      ~scale:0.83
  in
  let reference = Mat.rank_one_rescale a ~beta:(-0.43) ~b ~factor:1. in
  check_bool "support-block update bit-matches dense rank-one" true
    (bits_equal_mat mutated reference);
  check_bool "scalar is factor*scale" true
    (Int64.equal (Int64.bits_of_float scale')
       (Int64.bits_of_float (1.07 *. 0.83)));
  (* Bit-exact symmetry survives the in-place sparse update. *)
  let ok = ref true in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if
        not
          (Int64.equal
             (Int64.bits_of_float (Mat.get mutated i j))
             (Int64.bits_of_float (Mat.get mutated j i)))
      then ok := false
    done
  done;
  check_bool "bit-exact symmetry" true !ok

let sparse_props =
  [
    prop "of_dense round-trips and stores no zeros" 200
      QCheck.(pair (int_range 1 64) (int_range 0 1000))
      (fun (n, seed) ->
        let x = fill_vec ~sparse:(seed mod 3 <> 0) n seed in
        match Vec.Sparse.of_dense x with
        | None ->
            (* Rejected: the density really is above the threshold. *)
            let s = Vec.Sparse.gather x in
            Vec.Sparse.density s > Vec.Sparse.default_max_density
        | Some s ->
            Vec.Sparse.density s <= Vec.Sparse.default_max_density
            && Array.for_all (fun v -> v <> 0.) s.Vec.Sparse.value
            && bits_equal_vec (Vec.Sparse.to_dense s) x);
    prop "sparse kernels bit-match dense (with pool)" 60
      QCheck.(pair (int_range 1 32) (int_range 0 1000))
      (fun (n, seed) ->
        let a = fill_mat n seed in
        let x = fill_vec ~sparse:true n (seed + 3) in
        let sx = Vec.Sparse.gather x in
        let y = fill_vec ~sparse:false n (seed + 5) in
        with_default_pool 2 (fun () ->
            bits_equal_vec (Mat.matvec_sparse a sx) (Mat.matvec a x)
            && Int64.equal
                 (Int64.bits_of_float (Mat.quad_sparse a sx))
                 (Int64.bits_of_float (Mat.quad a x))
            && Int64.equal
                 (Int64.bits_of_float (Vec.Sparse.dot_dense sx y))
                 (Int64.bits_of_float (Vec.dot x y))));
    prop "sparse rescale bit-matches dense rank-one" 60
      QCheck.(pair (int_range 1 32) (int_range 0 1000))
      (fun (n, seed) ->
        let a = fill_mat n seed in
        let b = fill_vec ~sparse:true n (seed + 7) in
        let sb = Vec.Sparse.gather b in
        let mutated = Mat.copy a in
        let scale' =
          Mat.rank_one_rescale_sparse mutated ~beta:(-0.37) ~b:sb ~factor:1.013
            ~scale:2.5
        in
        bits_equal_mat mutated (Mat.rank_one_rescale a ~beta:(-0.37) ~b ~factor:1.)
        && Int64.equal (Int64.bits_of_float scale')
             (Int64.bits_of_float (1.013 *. 2.5)));
  ]

(* ------------------------------------------------------------------ *)
(* Batch gather/scatter + blocked batch projection                     *)
(* ------------------------------------------------------------------ *)

let test_pack_unpack () =
  let vs = Array.init 3 (fun i -> fill_vec ~sparse:(i = 1) 7 (i + 1)) in
  let panel = Mat.pack_rows vs in
  check_int "rows" 3 (Mat.rows panel);
  check_int "cols" 7 (Mat.cols panel);
  Array.iteri
    (fun i v ->
      check_bool "packed row bits" true (bits_equal_vec (Mat.row panel i) v))
    vs;
  (* [~into] reuse hands back the same panel with the same contents. *)
  let panel' = Mat.pack_rows ~into:panel vs in
  check_bool "into returns the panel" true (panel' == panel);
  let buf = Vec.zeros 7 in
  Array.iteri
    (fun i v ->
      Mat.unpack_row panel i ~into:buf;
      check_bool "unpacked row bits" true (bits_equal_vec buf v))
    vs;
  Alcotest.check_raises "empty batch"
    (Invalid_argument "Mat.pack_rows: no rows") (fun () ->
      ignore (Mat.pack_rows [||]));
  Alcotest.check_raises "ragged batch"
    (Invalid_argument "Mat.pack_rows: ragged rows") (fun () ->
      ignore (Mat.pack_rows [| Vec.zeros 3; Vec.zeros 4 |]));
  Alcotest.check_raises "pack into mismatch"
    (Invalid_argument "Mat.pack_rows: into dimension mismatch") (fun () ->
      ignore (Mat.pack_rows ~into:(Mat.zeros 2 7) vs));
  Alcotest.check_raises "unpack row out of range"
    (Invalid_argument "Mat.unpack_row: row out of range") (fun () ->
      Mat.unpack_row panel 3 ~into:buf);
  Alcotest.check_raises "unpack into mismatch"
    (Invalid_argument "Mat.unpack_row: into dimension mismatch") (fun () ->
      Mat.unpack_row panel 0 ~into:(Vec.zeros 6))

(* Every row of the blocked batch projection must carry the exact bits
   of the corresponding single-vector [project] — the contract the
   batched decide path's bit-identity rests on. *)
let check_batch_at (k, n, b) =
  let p = fill_rect k n 1 in
  let pt = Mat.transpose p in
  let vs = Array.init b (fun i -> fill_vec ~sparse:(i mod 2 = 0) n (i + 3)) in
  let xs = Mat.pack_rows vs in
  let reference = Array.map (naive_project p) vs in
  let check jobs () =
    let tag s = Printf.sprintf "%s k=%d n=%d b=%d jobs=%d" s k n b jobs in
    let u = Mat.project_batch ~pt xs in
    check_int (tag "rows") b (Mat.rows u);
    check_int (tag "cols") k (Mat.cols u);
    Array.iteri
      (fun i r ->
        check_bool (tag "row = naive") true (bits_equal_vec (Mat.row u i) r);
        check_bool (tag "row = project") true
          (bits_equal_vec (Mat.row u i) (Mat.project p vs.(i))))
      reference;
    let into = Mat.zeros b k in
    let u' = Mat.project_batch ~into ~pt xs in
    check_bool (tag "into returned") true (u' == into);
    check_bool (tag "into bits") true (bits_equal_mat u' u)
  in
  check 0 ();
  List.iter (fun jobs -> with_default_pool jobs (check jobs)) [ 1; 2; 4 ]

let test_batch_small () =
  List.iter check_batch_at [ (1, 1, 1); (2, 5, 3); (8, 8, 8); (5, 40, 17) ]

(* Straddle the pool gate (either dimension of the panel at 512) and
   leave shared-dimension remainders on both sides of the 8-wide
   register blocking. *)
let test_batch_threshold () =
  List.iter check_batch_at
    [ (3, 511, 4); (3, 512, 4); (16, 520, 2); (2, 40, 512) ]

let test_batch_validation () =
  let p = fill_rect 2 3 1 in
  let pt = Mat.transpose p in
  let xs = Mat.pack_rows [| fill_vec ~sparse:false 3 1 |] in
  Alcotest.check_raises "dimension mismatch"
    (Invalid_argument "Mat.project_batch: dimension mismatch") (fun () ->
      ignore (Mat.project_batch ~pt:(Mat.transpose (fill_rect 2 4 1)) xs));
  Alcotest.check_raises "into mismatch"
    (Invalid_argument "Mat.project_batch: into dimension mismatch") (fun () ->
      ignore (Mat.project_batch ~into:(Mat.zeros 1 3) ~pt xs));
  (* Aliasing is only expressible on square shapes; both operands must
     be caught before the blocked pass scribbles over them. *)
  let sq = fill_rect 3 3 4 in
  let spt = Mat.transpose sq in
  let sxs = Mat.pack_rows (Array.init 3 (fun i -> fill_vec ~sparse:false 3 i)) in
  Alcotest.check_raises "into aliases the panel"
    (Invalid_argument "Mat.project_batch: into aliases an input") (fun () ->
      ignore (Mat.project_batch ~into:sxs ~pt:spt sxs));
  Alcotest.check_raises "into aliases the projection"
    (Invalid_argument "Mat.project_batch: into aliases an input") (fun () ->
      ignore (Mat.project_batch ~into:spt ~pt:spt sxs))

let batch_props =
  [
    prop "project_batch rows bit-match project under a pool" 60
      QCheck.(
        quad (int_range 1 8) (int_range 1 40) (int_range 1 24)
          (int_range 0 1000))
      (fun (k, n, b, seed) ->
        let p = fill_rect k n seed in
        let pt = Mat.transpose p in
        let vs =
          Array.init b (fun i ->
              fill_vec ~sparse:((i + seed) mod 2 = 0) n (seed + i))
        in
        let reference = Array.map (naive_project p) vs in
        with_default_pool 2 (fun () ->
            let u = Mat.project_batch ~pt (Mat.pack_rows vs) in
            let ok = ref true in
            Array.iteri
              (fun i r ->
                if not (bits_equal_vec (Mat.row u i) r) then ok := false)
              reference;
            !ok));
  ]

(* ------------------------------------------------------------------ *)

let () = Test_env.install_pool_from_env ()

let () =
  ignore vec_gen;
  Alcotest.run "dm_linalg"
    [
      ( "vec",
        [
          Alcotest.test_case "basics" `Quick test_vec_basics;
          Alcotest.test_case "basis" `Quick test_vec_basis;
          Alcotest.test_case "arithmetic" `Quick test_vec_ops;
          Alcotest.test_case "normalize" `Quick test_vec_normalize;
          Alcotest.test_case "dimension mismatch" `Quick test_vec_mismatch;
          Alcotest.test_case "slice/sort/concat" `Quick test_vec_slice_sort;
        ]
        @ vec_props );
      ( "mat",
        [
          Alcotest.test_case "identity" `Quick test_mat_identity;
          Alcotest.test_case "matvec" `Quick test_mat_matvec;
          Alcotest.test_case "matmul" `Quick test_mat_matmul;
          Alcotest.test_case "quadratic form" `Quick test_mat_quad;
          Alcotest.test_case "rank-one update" `Quick test_mat_rank_one;
          Alcotest.test_case "outer product" `Quick test_mat_outer;
          Alcotest.test_case "symmetrize" `Quick test_mat_symmetrize;
          Alcotest.test_case "ragged input" `Quick test_mat_ragged;
          Alcotest.test_case "row/col/diag" `Quick test_mat_row_col_diag;
        ]
        @ mat_props );
      ( "chol",
        [
          Alcotest.test_case "known factor" `Quick test_chol_known;
          Alcotest.test_case "solve" `Quick test_chol_solve;
          Alcotest.test_case "indefinite input" `Quick test_chol_not_pd;
          Alcotest.test_case "log det" `Quick test_chol_log_det;
        ]
        @ chol_props );
      ( "lu",
        [
          Alcotest.test_case "known inverse" `Quick test_lu_known;
          Alcotest.test_case "pivoting" `Quick test_lu_pivoting;
          Alcotest.test_case "singular input" `Quick test_lu_singular;
        ]
        @ lu_props );
      ( "eigen",
        [
          Alcotest.test_case "diagonal matrix" `Quick test_eigen_diag;
          Alcotest.test_case "known 2x2" `Quick test_eigen_known_2x2;
          Alcotest.test_case "asymmetric input" `Quick test_eigen_not_symmetric;
          Alcotest.test_case "log volume" `Quick test_eigen_log_volume;
        ]
        @ eigen_props );
      ( "pool",
        [
          Alcotest.test_case "pool basics" `Quick test_pool_basics;
          Alcotest.test_case "kernels vs naive (small dims)" `Quick
            test_kernels_small;
          Alcotest.test_case "kernels vs naive (511/512 threshold)" `Slow
            test_kernels_threshold;
          Alcotest.test_case "fused rescale bit-exact symmetry" `Quick
            test_rescale_symmetry;
          Alcotest.test_case "fused rescale validation" `Quick
            test_rescale_validation;
        ]
        @ pool_props );
      ( "projection",
        [
          Alcotest.test_case "kernels vs naive (small dims)" `Quick
            test_projection_small;
          Alcotest.test_case "kernels vs naive (511/512 threshold)" `Slow
            test_projection_threshold;
          Alcotest.test_case "validation" `Quick test_projection_validation;
        ]
        @ projection_props );
      ( "batch",
        [
          Alcotest.test_case "pack/unpack round-trip" `Quick test_pack_unpack;
          Alcotest.test_case "project_batch vs project (small dims)" `Quick
            test_batch_small;
          Alcotest.test_case "project_batch vs project (511/512 threshold)"
            `Slow test_batch_threshold;
          Alcotest.test_case "validation" `Quick test_batch_validation;
        ]
        @ batch_props );
      ( "sparse",
        [
          Alcotest.test_case "sparse view basics" `Quick test_sparse_view;
          Alcotest.test_case "sparse kernels vs dense (small dims)" `Quick
            test_sparse_kernels_small;
          Alcotest.test_case "sparse kernels vs dense (511/512 threshold)"
            `Slow test_sparse_kernels_threshold;
          Alcotest.test_case "in-place sparse rescale" `Quick
            test_sparse_rescale;
        ]
        @ sparse_props );
    ]
