(* Unit and property tests for the dm_ml substrate. *)

module Vec = Dm_linalg.Vec
module Mat = Dm_linalg.Mat
module Rng = Dm_prob.Rng
module Dist = Dm_prob.Dist
module Categorical = Dm_ml.Categorical
module Hashing = Dm_ml.Hashing
module Linreg = Dm_ml.Linreg
module Ftrl = Dm_ml.Ftrl
module Pca = Dm_ml.Pca
module Kernel = Dm_ml.Kernel
module Split = Dm_ml.Split
module Metrics = Dm_ml.Metrics
module Exp_weights = Dm_ml.Exp_weights
module Ftpl = Dm_ml.Ftpl

let check_float = Alcotest.(check (float 1e-9))
let check_float_loose = Alcotest.(check (float 1e-5))
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let prop name count arb f =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name ~count:(Test_env.qcheck_count count) arb f)

(* ------------------------------------------------------------------ *)
(* Categorical                                                         *)
(* ------------------------------------------------------------------ *)

let test_categorical_codes () =
  let col = [| Some "ny"; Some "la"; None; Some "ny"; Some "sf" |] in
  let enc = Categorical.fit col in
  check_int "cardinality" 3 (Categorical.cardinality enc);
  check_int "first seen" 0 (Categorical.code enc (Some "ny"));
  check_int "second seen" 1 (Categorical.code enc (Some "la"));
  check_int "third seen" 2 (Categorical.code enc (Some "sf"));
  check_int "missing" (-1) (Categorical.code enc None);
  check_int "unseen" (-1) (Categorical.code enc (Some "boston"));
  check_bool "transform" true
    (Categorical.transform enc col = [| 0; 1; -1; 0; 2 |]);
  check_float "code_float" 1. (Categorical.code_float enc (Some "la"))

let test_categorical_one_hot () =
  let enc = Categorical.fit [| Some "a"; Some "b" |] in
  check_bool "one hot a" true
    (Vec.approx_equal (Categorical.one_hot enc (Some "a")) [| 1.; 0. |]);
  check_bool "one hot missing" true
    (Vec.approx_equal (Categorical.one_hot enc None) [| 0.; 0. |])

let test_categorical_categories () =
  let enc = Categorical.fit [| Some "x"; Some "y"; Some "x" |] in
  check_bool "order preserved" true
    (Categorical.categories enc = [| "x"; "y" |])

(* ------------------------------------------------------------------ *)
(* Hashing                                                             *)
(* ------------------------------------------------------------------ *)

let test_hashing_determinism () =
  check_bool "fnv stable" true
    (Hashing.fnv1a64 "device=abc" = Hashing.fnv1a64 "device=abc");
  check_bool "fnv distinguishes" true
    (Hashing.fnv1a64 "a" <> Hashing.fnv1a64 "b");
  check_int "bucket stable" (Hashing.bucket ~dim:128 "k=v")
    (Hashing.bucket ~dim:128 "k=v")

let test_hashing_encode () =
  let fs = Hashing.encode ~dim:64 [ ("site", "s1"); ("app", "a1") ] in
  check_bool "in range" true
    (List.for_all (fun f -> f.Hashing.index >= 0 && f.Hashing.index < 64) fs);
  check_bool "sorted unique" true
    (let idx = List.map (fun f -> f.Hashing.index) fs in
     idx = List.sort_uniq compare idx);
  (* Duplicate fields accumulate. *)
  let fs2 = Hashing.encode ~dim:64 [ ("site", "s1"); ("site", "s1") ] in
  check_bool "accumulates" true
    (List.exists (fun f -> f.Hashing.value = 2.) fs2)

let test_hashing_dense_dot () =
  let fs = Hashing.encode ~dim:16 [ ("f", "v") ] in
  let dense = Hashing.to_dense ~dim:16 fs in
  check_float "dot matches dense" (Vec.dot dense dense)
    (Hashing.dot_dense fs dense)

let test_hashing_normalize () =
  let fs = Hashing.encode ~dim:32 [ ("a", "1"); ("b", "2"); ("c", "3") ] in
  let unit = Hashing.normalize fs in
  let norm =
    sqrt (List.fold_left (fun acc f -> acc +. (f.Hashing.value ** 2.)) 0. unit)
  in
  check_bool "unit L2" true (abs_float (norm -. 1.) < 1e-9);
  check_bool "empty unchanged" true (Hashing.normalize [] = [])

let hashing_props =
  [
    prop "buckets always in range" 200
      QCheck.(pair (int_range 1 2048) string)
      (fun (dim, s) ->
        let b = Hashing.bucket ~dim s in
        b >= 0 && b < dim);
    prop "dense roundtrip preserves values" 100
      QCheck.(small_list (pair (string_of_size (QCheck.Gen.return 3)) (string_of_size (QCheck.Gen.return 3))))
      (fun fields ->
        let fs = Hashing.encode ~dim:256 fields in
        let dense = Hashing.to_dense ~dim:256 fs in
        List.for_all
          (fun f -> dense.(f.Hashing.index) = f.Hashing.value)
          fs);
  ]

(* ------------------------------------------------------------------ *)
(* Linreg                                                              *)
(* ------------------------------------------------------------------ *)

let test_linreg_exact_recovery () =
  (* Noiseless data from y = 2x₀ − 3x₁ + 5 must be recovered exactly. *)
  let rng = Rng.create 100 in
  let rows = 50 in
  let x = Mat.init rows 2 (fun _ _ -> Rng.uniform rng (-5.) 5.) in
  let y =
    Vec.init rows (fun i ->
        (2. *. Mat.get x i 0) -. (3. *. Mat.get x i 1) +. 5.)
  in
  let m = Linreg.fit x y in
  check_float_loose "w0" 2. (Vec.get m.Linreg.weights 0);
  check_float_loose "w1" (-3.) (Vec.get m.Linreg.weights 1);
  check_float_loose "intercept" 5. m.Linreg.intercept;
  check_bool "mse ~ 0" true (Linreg.mse m x y < 1e-10);
  check_bool "r2 = 1" true (Linreg.r2 m x y > 1. -. 1e-9)

let test_linreg_noisy () =
  let rng = Rng.create 101 in
  let rows = 2000 in
  let x = Mat.init rows 3 (fun _ _ -> Dist.normal rng ~mean:0. ~std:1.) in
  let w = [| 1.; -2.; 0.5 |] in
  let y =
    Vec.init rows (fun i ->
        Vec.dot (Mat.row x i) w +. Dist.normal rng ~mean:0. ~std:0.3)
  in
  let m = Linreg.fit x y in
  Array.iteri
    (fun j wj ->
      check_bool
        (Printf.sprintf "w%d close" j)
        true
        (abs_float (Vec.get m.Linreg.weights j -. wj) < 0.05))
    w;
  (* Residual MSE should approach the noise variance 0.09. *)
  check_bool "mse near noise floor" true (abs_float (Linreg.mse m x y -. 0.09) < 0.02)

let test_linreg_no_intercept () =
  let x = Mat.of_arrays [| [| 1. |]; [| 2. |]; [| 3. |] |] in
  let y = [| 2.; 4.; 6. |] in
  let m = Linreg.fit ~intercept:false x y in
  check_float_loose "slope" 2. (Vec.get m.Linreg.weights 0);
  check_float "no intercept" 0. m.Linreg.intercept

let test_linreg_collinear () =
  (* Duplicated column: ridge escalation must still return finite weights. *)
  let x = Mat.of_arrays [| [| 1.; 1. |]; [| 2.; 2. |]; [| 3.; 3. |] |] in
  let y = [| 2.; 4.; 6. |] in
  let m = Linreg.fit x y in
  check_bool "finite" true (Array.for_all Float.is_finite m.Linreg.weights);
  check_bool "still predicts" true (Linreg.mse m x y < 1e-4)

let test_linreg_shape_errors () =
  let x = Mat.of_arrays [| [| 1. |] |] in
  check_bool "target mismatch" true
    (match Linreg.fit x [| 1.; 2. |] with
    | _ -> false
    | exception Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Ftrl                                                                *)
(* ------------------------------------------------------------------ *)

let sparse_example rng ~dim ~theta =
  (* A random 5-hot example labelled by a ground-truth sparse logistic model. *)
  let active = Array.init 5 (fun _ -> Rng.int rng dim) in
  let features =
    Array.to_list active
    |> List.sort_uniq compare
    |> List.map (fun i -> { Hashing.index = i; value = 1. })
  in
  let z = List.fold_left (fun acc f -> acc +. theta.(f.Hashing.index)) 0. features in
  let p = 1. /. (1. +. exp (-.z)) in
  (features, Rng.float rng < p)

let make_corpus seed ~dim ~rows =
  let rng = Rng.create seed in
  let theta =
    Array.init dim (fun i -> if i < 8 then (if i mod 2 = 0 then 2. else -2.) else 0.)
  in
  (Array.init rows (fun _ -> sparse_example rng ~dim ~theta), theta)

let test_ftrl_learns () =
  let corpus, _ = make_corpus 7 ~dim:64 ~rows:4000 in
  let model = Ftrl.create ~params:{ Ftrl.alpha = 0.1; beta = 1.; l1 = 0.5; l2 = 1. } ~dim:64 () in
  let before = Ftrl.log_loss model corpus in
  Ftrl.train model corpus ~epochs:3;
  let after = Ftrl.log_loss model corpus in
  check_bool "loss decreases" true (after < before);
  (* Must clearly beat the p=0.5 constant predictor (loss log 2). *)
  check_bool "beats random" true (after < log 2. *. 0.95)

let test_ftrl_sparsity_monotone_in_l1 () =
  let corpus, _ = make_corpus 8 ~dim:64 ~rows:2000 in
  let run l1 =
    let m = Ftrl.create ~params:{ Ftrl.alpha = 0.1; beta = 1.; l1; l2 = 1. } ~dim:64 () in
    Ftrl.train m corpus ~epochs:2;
    Ftrl.nonzeros m
  in
  let loose = run 0.01 and tight = run 5. in
  check_bool "higher l1, fewer nonzeros" true (tight <= loose);
  check_bool "some signal survives" true (loose > 0)

let test_ftrl_weight_closed_form () =
  (* Untrained model: z = 0 everywhere, so all weights are clipped to 0. *)
  let m = Ftrl.create ~dim:4 () in
  check_int "all zero" 0 (Ftrl.nonzeros m);
  check_float "predict 0.5 at init" 0.5 (Ftrl.predict m [ { Hashing.index = 0; value = 1. } ])

let test_ftrl_prediction_range () =
  let corpus, _ = make_corpus 9 ~dim:32 ~rows:500 in
  let m = Ftrl.create ~dim:32 () in
  Ftrl.train m corpus ~epochs:1;
  Array.iter
    (fun (x, _) ->
      let p = Ftrl.predict m x in
      check_bool "in (0,1)" true (p > 0. && p < 1.))
    corpus

let test_ftrl_validation () =
  check_bool "bad alpha" true
    (match Ftrl.create ~params:{ Ftrl.alpha = 0.; beta = 1.; l1 = 0.; l2 = 0. } ~dim:4 () with
    | _ -> false
    | exception Invalid_argument _ -> true);
  check_bool "bad dim" true
    (match Ftrl.create ~dim:0 () with
    | _ -> false
    | exception Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Logreg (batch)                                                      *)
(* ------------------------------------------------------------------ *)

module Logreg = Dm_ml.Logreg

let logreg_corpus seed ~rows =
  let rng = Rng.create seed in
  let w = [| 2.; -1.5; 0.8 |] and b = -0.4 in
  let x = Mat.init rows 3 (fun _ _ -> Dist.normal rng ~mean:0. ~std:1.) in
  let labels =
    Array.init rows (fun i ->
        let z = Vec.dot (Mat.row x i) w +. b in
        Rng.float rng < 1. /. (1. +. exp (-.z)))
  in
  (x, labels, w, b)

let test_logreg_learns () =
  let x, labels, w, b = logreg_corpus 50 ~rows:4000 in
  let m = Logreg.fit x labels in
  (* Recovered weights point the right way and the loss beats the
     constant predictor. *)
  Array.iteri
    (fun j wj ->
      check_bool
        (Printf.sprintf "sign of w%d" j)
        true
        (wj *. Vec.get m.Logreg.weights j > 0.))
    w;
  check_bool "bias sign" true (b *. m.Logreg.bias > 0.);
  let base_rate =
    Array.fold_left (fun acc l -> if l then acc +. 1. else acc) 0. labels
    /. 4000.
  in
  let base_entropy =
    -.((base_rate *. log base_rate)
      +. ((1. -. base_rate) *. log (1. -. base_rate)))
  in
  check_bool "beats constant" true (Logreg.log_loss m x labels < base_entropy)

let test_logreg_predictions_in_range () =
  let x, labels, _, _ = logreg_corpus 51 ~rows:500 in
  let m = Logreg.fit ~params:{ Logreg.default_params with Logreg.iterations = 30 } x labels in
  for i = 0 to 499 do
    let p = Logreg.predict m (Mat.row x i) in
    check_bool "in (0,1)" true (p > 0. && p < 1.)
  done

let test_logreg_l2_shrinks () =
  let x, labels, _, _ = logreg_corpus 52 ~rows:1000 in
  let norm l2 =
    let m = Logreg.fit ~params:{ Logreg.default_params with Logreg.l2 } x labels in
    Vec.norm2 m.Logreg.weights
  in
  check_bool "heavier l2, smaller weights" true (norm 1. < norm 1e-6)

let test_logreg_validation () =
  check_bool "shape mismatch" true
    (match Logreg.fit (Mat.identity 2) [| true |] with
    | _ -> false
    | exception Invalid_argument _ -> true);
  check_bool "bad params" true
    (match
       Logreg.fit
         ~params:{ Logreg.learning_rate = 0.; l2 = 0.; iterations = 1 }
         (Mat.identity 2) [| true; false |]
     with
    | _ -> false
    | exception Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Pca                                                                 *)
(* ------------------------------------------------------------------ *)

let test_pca_axis_aligned () =
  (* Variance concentrated on axis 0: the first component must align. *)
  let rng = Rng.create 20 in
  let x =
    Mat.init 300 3 (fun _ j ->
        let s = if j = 0 then 5. else 0.1 in
        Dist.normal rng ~mean:0. ~std:s)
  in
  let p = Pca.fit ~components:1 x in
  let c0 = Mat.row p.Pca.components 0 in
  check_bool "axis 0 dominates" true (abs_float c0.(0) > 0.99);
  check_bool "explains most variance" true (Pca.explained_ratio p > 0.95)

let test_pca_reconstruction () =
  let rng = Rng.create 21 in
  let x = Mat.init 100 4 (fun _ _ -> Dist.normal rng ~mean:1. ~std:2.) in
  let p = Pca.fit x in
  (* Full-rank PCA reconstructs exactly. *)
  let sample = Mat.row x 17 in
  let recon = Pca.reconstruct p (Pca.transform p sample) in
  check_bool "roundtrip" true (Vec.approx_equal ~tol:1e-6 recon sample)

let test_pca_explained_sorted () =
  let rng = Rng.create 22 in
  let x = Mat.init 200 5 (fun _ j -> Dist.normal rng ~mean:0. ~std:(float_of_int (j + 1))) in
  let p = Pca.fit x in
  let ev = p.Pca.explained_variance in
  for i = 0 to Vec.dim ev - 2 do
    check_bool "descending" true (ev.(i) >= ev.(i + 1) -. 1e-9)
  done

let test_pca_transform_into_and_all () =
  (* [transform ?into], [transform] and [transform_all] promise the
     same bits: one ascending-feature reduction per output element
     (multiplication commutes bitwise, so the batch matmul_tt path is
     exact too). *)
  let rng = Rng.create 24 in
  let x = Mat.init 60 7 (fun _ _ -> Dist.normal rng ~mean:0.5 ~std:2.) in
  let p = Pca.fit ~components:3 x in
  let all = Pca.transform_all p x in
  let into = Vec.zeros 3 in
  let bits_equal a b =
    Array.for_all2
      (fun u v -> Int64.equal (Int64.bits_of_float u) (Int64.bits_of_float v))
      a b
  in
  for i = 0 to 59 do
    let row = Mat.row x i in
    let t = Pca.transform p row in
    check_bool "transform_all bit-matches per-sample" true
      (bits_equal (Mat.row all i) t);
    check_bool "into bit-matches allocating" true
      (bits_equal (Pca.transform ~into p row) t);
    check_bool "into receives the result" true (bits_equal into t)
  done;
  check_bool "transform_all shape mismatch" true
    (match Pca.transform_all p (Mat.identity 3) with
    | _ -> false
    | exception Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Subspace                                                            *)
(* ------------------------------------------------------------------ *)

module Subspace = Dm_ml.Subspace
module Pool = Dm_linalg.Pool

let bits_equal_vec a b =
  Array.length a = Array.length b
  && Array.for_all2
       (fun x y -> Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y))
       a b

let with_default_pool jobs f =
  Pool.with_pool ~jobs (fun p ->
      Pool.set_default (Some p);
      Fun.protect ~finally:(fun () -> Pool.set_default None) f)

(* Planted spectrum: descending per-feature stds give a clean gap, so
   both solvers must find the same leading directions. *)
let spectrum_sample seed ~rows ~cols =
  let rng = Rng.create seed in
  Mat.init rows cols (fun _ j ->
      Dist.normal rng ~mean:0. ~std:(2. ** float_of_int (-j)))

let test_subspace_matches_pca () =
  let x = spectrum_sample 40 ~rows:300 ~cols:10 in
  let k = 4 in
  let sub = Subspace.fit ~rng:(Rng.create 41) ~components:k x in
  let pca = Pca.fit ~components:k x in
  check_bool "mean agrees" true
    (Vec.approx_equal ~tol:1e-12 sub.Subspace.mean pca.Pca.mean);
  for i = 0 to k - 1 do
    let ev_s = sub.Subspace.explained_variance.(i) in
    let ev_p = pca.Pca.explained_variance.(i) in
    check_bool
      (Printf.sprintf "eigenvalue %d within 1e-3 relative" i)
      true
      (abs_float (ev_s -. ev_p) <= 1e-3 *. ev_p);
    let cos =
      Vec.dot (Mat.row sub.Subspace.components i) (Mat.row pca.Pca.components i)
    in
    check_bool (Printf.sprintf "direction %d aligned" i) true
      (abs_float cos > 0.999)
  done;
  check_bool "total variance agrees" true
    (abs_float (sub.Subspace.total_variance -. pca.Pca.total_variance)
    <= 1e-9 *. pca.Pca.total_variance);
  check_bool "explained ratio agrees" true
    (abs_float (Subspace.explained_ratio sub -. Pca.explained_ratio pca) < 1e-3)

let test_subspace_orthonormal_rows () =
  let x = spectrum_sample 42 ~rows:80 ~cols:12 in
  let sub = Subspace.fit ~rng:(Rng.create 43) ~components:5 x in
  let c = sub.Subspace.components in
  for i = 0 to 4 do
    for j = 0 to 4 do
      let g = Vec.dot (Mat.row c i) (Mat.row c j) in
      let expect = if i = j then 1. else 0. in
      check_bool (Printf.sprintf "gram %d %d" i j) true
        (abs_float (g -. expect) < 1e-9)
    done
  done

let test_subspace_full_rank_residual () =
  (* k = d: the basis spans everything, so reconstruction is exact up
     to roundoff and the transform matches Pca's bitwise contract
     shape (project on orthonormal rows). *)
  let x = spectrum_sample 44 ~rows:50 ~cols:6 in
  let sub = Subspace.fit ~rng:(Rng.create 45) ~components:6 x in
  for i = 0 to 9 do
    check_bool "residual ~ 0 at full rank" true
      (Subspace.residual_norm sub (Mat.row x i) < 1e-9)
  done;
  let into = Vec.zeros 6 in
  let row = Mat.row x 3 in
  check_bool "into bit-matches allocating" true
    (bits_equal_vec (Subspace.transform ~into sub row) (Subspace.transform sub row))

let test_subspace_pool_determinism () =
  (* The fit runs entirely on the bit-identical-at-any-jobs kernels,
     so the learned basis must not depend on the worker count. *)
  let x = spectrum_sample 46 ~rows:120 ~cols:40 in
  let fit () = Subspace.fit ~rng:(Rng.create 47) ~components:8 x in
  let serial = fit () in
  List.iter
    (fun jobs ->
      with_default_pool jobs (fun () ->
          let pooled = fit () in
          check_bool
            (Printf.sprintf "components bit-identical at jobs=%d" jobs)
            true
            (bits_equal_vec serial.Subspace.components.Mat.data
               pooled.Subspace.components.Mat.data);
          check_bool
            (Printf.sprintf "eigenvalues bit-identical at jobs=%d" jobs)
            true
            (bits_equal_vec serial.Subspace.explained_variance
               pooled.Subspace.explained_variance)))
    [ 1; 2; 4 ]

let test_subspace_validation () =
  check_bool "needs two rows" true
    (match
       Subspace.fit ~rng:(Rng.create 1) ~components:1 (Mat.identity 1)
     with
    | _ -> false
    | exception Invalid_argument _ -> true)

let subspace_props =
  [
    prop "fit invariants on random data" 25
      QCheck.(triple (int_range 2 20) (int_range 1 10) (int_range 0 1000))
      (fun (rows, k, seed) ->
        (* Clamp: qcheck's int shrinker steps outside the generator's
           range, and an [Invalid_argument] mid-shrink would mask the
           real counterexample. *)
        let rows = max rows 2 and k = max k 1 and seed = abs seed in
        let cols = 1 + (seed mod 9) in
        let x = spectrum_sample seed ~rows ~cols in
        let sub = Subspace.fit ~rng:(Rng.create (seed + 1)) ~components:k x in
        let kept = Mat.rows sub.Subspace.components in
        let orthonormal =
          let ok = ref true in
          for i = 0 to kept - 1 do
            for j = 0 to kept - 1 do
              let g =
                Vec.dot
                  (Mat.row sub.Subspace.components i)
                  (Mat.row sub.Subspace.components j)
              in
              let expect = if i = j then 1. else 0. in
              if abs_float (g -. expect) > 1e-8 then ok := false
            done
          done;
          !ok
        in
        let descending =
          let ok = ref true in
          for i = 0 to kept - 2 do
            if
              sub.Subspace.explained_variance.(i)
              < sub.Subspace.explained_variance.(i + 1) -. 1e-9
            then ok := false
          done;
          !ok
        in
        kept = min k cols && orthonormal && descending
        && Subspace.explained_ratio sub >= 0.
        && Subspace.explained_ratio sub <= 1.);
  ]

(* ------------------------------------------------------------------ *)
(* Kernel                                                              *)
(* ------------------------------------------------------------------ *)

let test_kernel_values () =
  let x = [| 1.; 0. |] and y = [| 0.; 1. |] in
  check_float "linear" 0. (Kernel.eval Kernel.Linear x y);
  check_float "poly" 1. (Kernel.eval (Kernel.Polynomial { degree = 2; offset = 1. }) x y);
  check_float "rbf at distance sqrt2" (exp (-2.)) (Kernel.eval (Kernel.Rbf { gamma = 1. }) x y);
  check_float "rbf self" 1. (Kernel.eval (Kernel.Rbf { gamma = 1. }) x x)

let test_kernel_psd () =
  let rng = Rng.create 23 in
  let points = Array.init 8 (fun _ -> Dist.normal_vec rng ~dim:3) in
  check_bool "linear psd" true (Kernel.is_psd_sample Kernel.Linear points);
  check_bool "rbf psd" true (Kernel.is_psd_sample (Kernel.Rbf { gamma = 0.5 }) points);
  check_bool "poly psd" true
    (Kernel.is_psd_sample (Kernel.Polynomial { degree = 2; offset = 1. }) points)

let test_landmark_map () =
  let landmarks = [| [| 0.; 0. |]; [| 1.; 1. |] |] in
  let m = Kernel.landmark_map (Kernel.Rbf { gamma = 1. }) ~landmarks in
  check_int "dim" 2 (Kernel.landmark_dim m);
  let phi = Kernel.apply m [| 0.; 0. |] in
  check_float "self landmark" 1. phi.(0);
  check_float "other landmark" (exp (-2.)) phi.(1)

let kernel_props =
  [
    prop "rbf symmetric and bounded" 100
      QCheck.(pair (array_of_size (QCheck.Gen.return 3) (float_range (-3.) 3.))
                (array_of_size (QCheck.Gen.return 3) (float_range (-3.) 3.)))
      (fun (x, y) ->
        let k = Kernel.Rbf { gamma = 0.7 } in
        let kxy = Kernel.eval k x y in
        abs_float (kxy -. Kernel.eval k y x) < 1e-12 && kxy > 0. && kxy <= 1.);
    prop "gram matrices are symmetric" 50
      QCheck.(int_range 2 6)
      (fun n ->
        let rng = Rng.create n in
        let pts = Array.init n (fun _ -> Dist.normal_vec rng ~dim:2) in
        Mat.is_symmetric (Kernel.gram (Kernel.Rbf { gamma = 1. }) pts));
  ]

(* ------------------------------------------------------------------ *)
(* Split / Metrics                                                     *)
(* ------------------------------------------------------------------ *)

let test_split_random () =
  let rng = Rng.create 30 in
  let data = Array.init 100 (fun i -> i) in
  let { Split.train; test } = Split.random rng ~test_fraction:0.2 data in
  check_int "test size" 20 (Array.length test);
  check_int "train size" 80 (Array.length train);
  let all = Array.append train test in
  Array.sort compare all;
  check_bool "partition" true (all = Array.init 100 (fun i -> i))

let test_split_suffix () =
  let data = [| 1; 2; 3; 4; 5 |] in
  let { Split.train; test } = Split.suffix ~test_fraction:0.4 data in
  check_bool "train prefix" true (train = [| 1; 2; 3 |]);
  check_bool "test suffix" true (test = [| 4; 5 |])

let test_metrics () =
  check_float "mse" 0.25 (Metrics.mse [| 1.; 2. |] [| 1.5; 2.5 |]);
  check_float "mae" 0.5 (Metrics.mae [| 1.; 2. |] [| 1.5; 2.5 |]);
  check_float "rmse" 0.5 (Metrics.rmse [| 1.; 2. |] [| 1.5; 2.5 |]);
  check_float "accuracy" 0.75
    (Metrics.accuracy ~probs:[| 0.9; 0.1; 0.8; 0.4 |]
       ~labels:[| true; false; false; false |] ());
  let ll =
    Metrics.log_loss ~probs:[| 0.9; 0.1 |] ~labels:[| true; false |]
  in
  check_bool "log loss" true (abs_float (ll -. -.(log 0.9)) < 1e-9)

let split_props =
  [
    prop "random split always partitions" 100
      QCheck.(pair (int_range 1 1000) (float_range 0. 1.))
      (fun (seed, frac) ->
        let data = Array.init 37 (fun i -> i) in
        let { Split.train; test } =
          Split.random (Rng.create seed) ~test_fraction:frac data
        in
        let all = Array.append train test in
        Array.sort compare all;
        all = Array.init 37 (fun i -> i));
    prop "suffix split preserves order" 100
      QCheck.(float_range 0. 1.)
      (fun frac ->
        let data = Array.init 23 (fun i -> i) in
        let { Split.train; test } = Split.suffix ~test_fraction:frac data in
        Array.append train test = data);
  ]

let categorical_props =
  [
    prop "codes are dense and in range" 100
      QCheck.(small_list (string_of_size (QCheck.Gen.int_range 1 3)))
      (fun values ->
        let col = Array.of_list (List.map Option.some values) in
        let enc = Categorical.fit col in
        let k = Categorical.cardinality enc in
        Array.for_all
          (fun c -> c >= 0 && c < k)
          (Categorical.transform enc col));
    prop "refitting on transformed output is stable" 50
      QCheck.(small_list (string_of_size (QCheck.Gen.int_range 1 3)))
      (fun values ->
        let col = Array.of_list (List.map Option.some values) in
        let enc = Categorical.fit col in
        (* Same column, same codes, twice. *)
        Categorical.transform enc col = Categorical.transform enc col);
  ]

let test_metrics_errors () =
  check_bool "mismatch" true
    (match Metrics.mse [| 1. |] [| 1.; 2. |] with
    | _ -> false
    | exception Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Exponential weights / FTPL                                          *)
(* ------------------------------------------------------------------ *)

let raises f =
  match f () with _ -> false | exception Invalid_argument _ -> true

(* A stationary stream with one clearly best arm: arm 0 pays 0.9 every
   round, the others a seed-dependent value in [0, 0.6].  The best
   fixed arm collects 0.9·T; blind uniform play collects well under
   0.6·T, so the regret bound below genuinely discriminates. *)
let stationary_payoffs ~arms seed =
  let rng = Rng.create seed in
  Array.init arms (fun j -> if j = 0 then 0.9 else 0.6 *. Rng.float rng)

(* O(√(T·log K)) regret sanity at the theory rate, as one inequality:
   total collected ≥ best fixed arm − 3·h·√(T·log K). *)
let regret_tolerance ~arms ~horizon =
  3. *. sqrt (float_of_int horizon *. log (float_of_int arms))

let ew_props =
  [
    prop "full-information regret is O(sqrt T log K)" 10
      QCheck.(int_range 1 10_000)
      (fun seed ->
        let arms = 5 and horizon = 400 in
        let payoffs = stationary_payoffs ~arms seed in
        let rate = Exp_weights.default_rate ~arms ~horizon in
        let t = Exp_weights.create ~arms ~payoff_bound:1. ~rate () in
        let rng = Rng.create (seed + 1) in
        let collected = ref 0. in
        for _ = 1 to horizon do
          collected := !collected +. payoffs.(Exp_weights.choose t rng);
          Exp_weights.update t ~payoffs
        done;
        let best = 0.9 *. float_of_int horizon in
        !collected >= best -. regret_tolerance ~arms ~horizon);
    prop "choose replays bit-for-bit from a seed" 20
      QCheck.(int_range 1 10_000)
      (fun seed ->
        let arms = 4 and horizon = 50 in
        let payoffs = stationary_payoffs ~arms seed in
        let trajectory () =
          let rate = Exp_weights.default_rate ~arms ~horizon in
          let t = Exp_weights.create ~arms ~payoff_bound:1. ~rate () in
          let rng = Rng.create seed in
          List.init horizon (fun _ ->
              let a = Exp_weights.choose t rng in
              Exp_weights.update t ~payoffs;
              a)
        in
        trajectory () = trajectory ());
  ]

let test_ew_distribution () =
  let t = Exp_weights.create ~arms:4 ~payoff_bound:1. ~rate:0.5 () in
  let p = Exp_weights.probabilities t in
  check_float_loose "uniform at init" 0.25 p.(0);
  check_float_loose "sums to one" 1. (Array.fold_left ( +. ) 0. p);
  for _ = 1 to 200 do
    Exp_weights.update t ~payoffs:[| 1.; 0.; 0.2; 0. |]
  done;
  check_int "best arm" 0 (Exp_weights.best_arm t);
  check_bool "mass concentrates on the leader" true
    ((Exp_weights.probabilities t).(0) > 0.9);
  let mixed = Exp_weights.create ~mix:0.2 ~arms:4 ~payoff_bound:1. ~rate:5. () in
  for _ = 1 to 200 do
    Exp_weights.update mixed ~payoffs:[| 1.; 0.; 0.; 0. |]
  done;
  check_bool "mix floors every arm at mix/K" true
    (Array.for_all
       (fun p -> p >= 0.2 /. 4. -. 1e-12)
       (Exp_weights.probabilities mixed))

let test_ew_bandit_identifies_best () =
  (* EXP3 on a deterministic gap: after enough importance-weighted
     rounds, the estimated cumulative payoffs rank the true best arm
     first.  Seeded, so no flakiness. *)
  let arms = 4 and horizon = 3_000 in
  let payoffs = stationary_payoffs ~arms 17 in
  let rate = Exp_weights.default_rate ~arms ~horizon in
  let t = Exp_weights.create ~mix:0.1 ~arms ~payoff_bound:1. ~rate () in
  let rng = Rng.create 23 in
  for _ = 1 to horizon do
    let a = Exp_weights.choose t rng in
    Exp_weights.update_bandit t ~arm:a ~payoff:payoffs.(a)
  done;
  check_int "bandit best arm" 0 (Exp_weights.best_arm t)

let test_ew_validation () =
  check_bool "arms >= 1" true (raises (fun () ->
      Exp_weights.create ~arms:0 ~payoff_bound:1. ~rate:0.1 ()));
  check_bool "positive payoff bound" true (raises (fun () ->
      Exp_weights.create ~arms:2 ~payoff_bound:0. ~rate:0.1 ()));
  check_bool "positive rate" true (raises (fun () ->
      Exp_weights.create ~arms:2 ~payoff_bound:1. ~rate:0. ()));
  check_bool "mix in [0,1]" true (raises (fun () ->
      Exp_weights.create ~mix:1.5 ~arms:2 ~payoff_bound:1. ~rate:0.1 ()));
  let t = Exp_weights.create ~arms:2 ~payoff_bound:1. ~rate:0.1 () in
  check_bool "payoff above bound" true (raises (fun () ->
      Exp_weights.update t ~payoffs:[| 2.; 0. |]));
  check_bool "payoff length" true (raises (fun () ->
      Exp_weights.update t ~payoffs:[| 0.5 |]));
  check_bool "bandit arm range" true (raises (fun () ->
      Exp_weights.update_bandit t ~arm:2 ~payoff:0.5))

let ftpl_props =
  [
    prop "full-information regret is O(sqrt T log K)" 10
      QCheck.(int_range 1 10_000)
      (fun seed ->
        let arms = 5 and horizon = 400 in
        let payoffs = stationary_payoffs ~arms seed in
        let rate = Exp_weights.default_rate ~arms ~horizon in
        let t =
          Ftpl.create ~arms ~payoff_bound:1. ~rate ~rng:(Rng.create seed) ()
        in
        let collected = ref 0. in
        for _ = 1 to horizon do
          collected := !collected +. payoffs.(Ftpl.choose t);
          Ftpl.update t ~payoffs
        done;
        let best = 0.9 *. float_of_int horizon in
        !collected >= best -. regret_tolerance ~arms ~horizon);
    prop "frozen perturbation makes choose pure" 20
      QCheck.(int_range 1 10_000)
      (fun seed ->
        let t =
          Ftpl.create ~arms:6 ~payoff_bound:1. ~rate:0.3
            ~rng:(Rng.create seed) ()
        in
        let a = Ftpl.choose t in
        a = Ftpl.choose t && a = Ftpl.choose t);
    prop "bandit trajectory replays bit-for-bit" 10
      QCheck.(int_range 1 10_000)
      (fun seed ->
        let arms = 4 and horizon = 60 in
        let payoffs = stationary_payoffs ~arms seed in
        let trajectory () =
          let t =
            Ftpl.create ~resamples:8 ~arms ~payoff_bound:1. ~rate:0.3
              ~rng:(Rng.create seed) ()
          in
          List.init horizon (fun _ ->
              let a = Ftpl.choose_fresh t in
              Ftpl.update_bandit t ~arm:a ~payoff:payoffs.(a);
              a)
        in
        trajectory () = trajectory ());
  ]

let test_ftpl_tracks_leader () =
  let t =
    Ftpl.create ~arms:3 ~payoff_bound:1. ~rate:0.5 ~rng:(Rng.create 4) ()
  in
  (* A large enough lead drowns any perturbation of mean h/rate = 2. *)
  for _ = 1 to 200 do
    Ftpl.update t ~payoffs:[| 0.; 1.; 0.3 |]
  done;
  check_int "leader" 1 (Ftpl.choose t);
  check_int "best arm" 1 (Ftpl.best_arm t);
  let totals = Ftpl.cumulative t in
  check_float "untouched arm" 0. totals.(0);
  check_float "leading arm" 200. totals.(1);
  check_float_loose "trailing arm" 60. totals.(2)

let test_ftpl_validation () =
  check_bool "arms >= 1" true (raises (fun () ->
      Ftpl.create ~arms:0 ~payoff_bound:1. ~rate:0.1 ~rng:(Rng.create 1) ()));
  check_bool "positive rate" true (raises (fun () ->
      Ftpl.create ~arms:2 ~payoff_bound:1. ~rate:(-1.) ~rng:(Rng.create 1) ()));
  check_bool "resamples >= 1" true (raises (fun () ->
      Ftpl.create ~resamples:0 ~arms:2 ~payoff_bound:1. ~rate:0.1
        ~rng:(Rng.create 1) ()));
  let t = Ftpl.create ~arms:2 ~payoff_bound:1. ~rate:0.1 ~rng:(Rng.create 1) () in
  check_bool "payoff above bound" true (raises (fun () ->
      Ftpl.update t ~payoffs:[| 2.; 0. |]));
  check_bool "bandit arm range" true (raises (fun () ->
      Ftpl.update_bandit t ~arm:(-1) ~payoff:0.5))

(* ------------------------------------------------------------------ *)

let () = Test_env.install_pool_from_env ()

let () =
  Alcotest.run "dm_ml"
    [
      ( "categorical",
        [
          Alcotest.test_case "codes" `Quick test_categorical_codes;
          Alcotest.test_case "one hot" `Quick test_categorical_one_hot;
          Alcotest.test_case "categories order" `Quick test_categorical_categories;
        ] );
      ( "hashing",
        [
          Alcotest.test_case "determinism" `Quick test_hashing_determinism;
          Alcotest.test_case "encode" `Quick test_hashing_encode;
          Alcotest.test_case "dense dot" `Quick test_hashing_dense_dot;
          Alcotest.test_case "normalize" `Quick test_hashing_normalize;
        ]
        @ hashing_props );
      ( "linreg",
        [
          Alcotest.test_case "exact recovery" `Quick test_linreg_exact_recovery;
          Alcotest.test_case "noisy recovery" `Quick test_linreg_noisy;
          Alcotest.test_case "no intercept" `Quick test_linreg_no_intercept;
          Alcotest.test_case "collinear design" `Quick test_linreg_collinear;
          Alcotest.test_case "shape errors" `Quick test_linreg_shape_errors;
        ] );
      ( "ftrl",
        [
          Alcotest.test_case "learns" `Quick test_ftrl_learns;
          Alcotest.test_case "l1 sparsity" `Quick test_ftrl_sparsity_monotone_in_l1;
          Alcotest.test_case "closed form at init" `Quick test_ftrl_weight_closed_form;
          Alcotest.test_case "prediction range" `Quick test_ftrl_prediction_range;
          Alcotest.test_case "validation" `Quick test_ftrl_validation;
        ] );
      ( "logreg",
        [
          Alcotest.test_case "learns" `Quick test_logreg_learns;
          Alcotest.test_case "prediction range" `Quick
            test_logreg_predictions_in_range;
          Alcotest.test_case "l2 shrinks weights" `Quick test_logreg_l2_shrinks;
          Alcotest.test_case "validation" `Quick test_logreg_validation;
        ] );
      ( "pca",
        [
          Alcotest.test_case "axis aligned" `Quick test_pca_axis_aligned;
          Alcotest.test_case "reconstruction" `Quick test_pca_reconstruction;
          Alcotest.test_case "explained variance sorted" `Quick test_pca_explained_sorted;
          Alcotest.test_case "transform into + batch bit-compat" `Quick
            test_pca_transform_into_and_all;
        ] );
      ( "subspace",
        [
          Alcotest.test_case "matches pca" `Quick test_subspace_matches_pca;
          Alcotest.test_case "orthonormal rows" `Quick
            test_subspace_orthonormal_rows;
          Alcotest.test_case "full-rank residual" `Quick
            test_subspace_full_rank_residual;
          Alcotest.test_case "pool determinism" `Quick
            test_subspace_pool_determinism;
          Alcotest.test_case "validation" `Quick test_subspace_validation;
        ]
        @ subspace_props );
      ( "kernel",
        [
          Alcotest.test_case "values" `Quick test_kernel_values;
          Alcotest.test_case "psd" `Quick test_kernel_psd;
          Alcotest.test_case "landmark map" `Quick test_landmark_map;
        ]
        @ kernel_props );
      ( "split+metrics",
        [
          Alcotest.test_case "random split" `Quick test_split_random;
          Alcotest.test_case "suffix split" `Quick test_split_suffix;
          Alcotest.test_case "metrics" `Quick test_metrics;
          Alcotest.test_case "metric errors" `Quick test_metrics_errors;
        ]
        @ split_props @ categorical_props );
      ( "exp_weights",
        [
          Alcotest.test_case "distribution" `Quick test_ew_distribution;
          Alcotest.test_case "bandit identifies best arm" `Slow
            test_ew_bandit_identifies_best;
          Alcotest.test_case "validation" `Quick test_ew_validation;
        ]
        @ ew_props );
      ( "ftpl",
        [
          Alcotest.test_case "tracks the leader" `Quick test_ftpl_tracks_leader;
          Alcotest.test_case "validation" `Quick test_ftpl_validation;
        ]
        @ ftpl_props );
    ]
