(* Unit and property tests for the dm_auction front-end: eager
   second-price clearing, hindsight benchmarks, and the reserve-policy
   drivers. *)

module Vec = Dm_linalg.Vec
module Rng = Dm_prob.Rng
module Engine = Dm_auction.Auction
module Policies = Dm_auction.Policies
module Bids = Dm_synth.Bids
module Mechanism = Dm_market.Mechanism
module Ellipsoid = Dm_market.Ellipsoid

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_float = Alcotest.(check (float 1e-9))

let prop name count arb f =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name ~count:(Test_env.qcheck_count count) arb f)

let raises f =
  match f () with _ -> false | exception Invalid_argument _ -> true

(* ------------------------------------------------------------------ *)
(* Clearing                                                            *)
(* ------------------------------------------------------------------ *)

let test_clear_second_price () =
  match Engine.clear ~bids:[| 5.; 4.; 1. |] ~reserves:[| 0.; 0.; 0. |] with
  | Engine.Sale { winner; price; runner_up } ->
      check_int "winner" 0 winner;
      check_float "second-price payment" 4. price;
      check_bool "runner-up recorded" true (runner_up = Some 4.)
  | Engine.No_sale -> Alcotest.fail "expected a sale"

let test_clear_reserve_binding () =
  (* Sole survivor: the winner pays their own reserve, not their bid. *)
  (match Engine.clear ~bids:[| 5. |] ~reserves:[| 3. |] with
  | Engine.Sale { winner; price; runner_up } ->
      check_int "winner" 0 winner;
      check_float "pays own reserve" 3. price;
      check_bool "no runner-up" true (runner_up = None)
  | Engine.No_sale -> Alcotest.fail "expected a sale");
  (* Reserve above the runner-up binds as the price floor. *)
  match Engine.clear ~bids:[| 5.; 2. |] ~reserves:[| 4.5; 0. |] with
  | Engine.Sale { price; _ } -> check_float "reserve floors price" 4.5 price
  | Engine.No_sale -> Alcotest.fail "expected a sale"

let test_clear_filters_all () =
  check_bool "everyone below reserve" true
    (Engine.clear ~bids:[| 1.; 2. |] ~reserves:[| 3.; 3. |] = Engine.No_sale)

let test_clear_tie_break () =
  match Engine.clear ~bids:[| 4.; 4. |] ~reserves:[| 0.; 0. |] with
  | Engine.Sale { winner; price; runner_up } ->
      check_int "lowest index wins" 0 winner;
      check_float "tie bid is the price" 4. price;
      check_bool "tie bid is the runner-up" true (runner_up = Some 4.)
  | Engine.No_sale -> Alcotest.fail "expected a sale"

let test_clear_eager_handoff () =
  (* The eager rule: a top bidder filtered by their own reserve hands
     the sale to the next survivor instead of cancelling the round. *)
  match Engine.clear ~bids:[| 5.; 3. |] ~reserves:[| 6.; 1. |] with
  | Engine.Sale { winner; price; runner_up } ->
      check_int "next survivor wins" 1 winner;
      check_float "pays own reserve" 1. price;
      check_bool "no surviving competitor" true (runner_up = None)
  | Engine.No_sale -> Alcotest.fail "expected a sale"

let test_clear_infinite_reserve_excludes () =
  match Engine.clear ~bids:[| 9.; 1. |] ~reserves:[| infinity; 0. |] with
  | Engine.Sale { winner; _ } -> check_int "excluded outright" 1 winner
  | Engine.No_sale -> Alcotest.fail "expected a sale"

let test_clear_validation () =
  check_bool "empty" true (raises (fun () ->
      Engine.clear ~bids:[||] ~reserves:[||]));
  check_bool "length mismatch" true (raises (fun () ->
      Engine.clear ~bids:[| 1. |] ~reserves:[| 0.; 0. |]));
  check_bool "negative bid" true (raises (fun () ->
      Engine.clear ~bids:[| -1. |] ~reserves:[| 0. |]));
  check_bool "infinite bid" true (raises (fun () ->
      Engine.clear ~bids:[| infinity |] ~reserves:[| 0. |]));
  check_bool "nan reserve" true (raises (fun () ->
      Engine.clear ~bids:[| 1. |] ~reserves:[| nan |]));
  check_bool "negative reserve" true (raises (fun () ->
      Engine.clear ~bids:[| 1. |] ~reserves:[| -0.5 |]))

let test_accounting () =
  let sale = Engine.clear ~bids:[| 5.; 4. |] ~reserves:[| 0.; 0. |] in
  check_float "revenue" 4. (Engine.revenue sale);
  check_float "welfare is the winner's bid" 5.
    (Engine.welfare ~bids:[| 5.; 4. |] sale);
  check_float "no-sale revenue" 0. (Engine.revenue Engine.No_sale);
  check_float "no-sale welfare" 0. (Engine.welfare ~bids:[| 5. |] Engine.No_sale)

let test_grid () =
  check_bool "endpoints inclusive" true
    (Engine.grid ~lo:0. ~hi:2. ~arms:5 = [| 0.; 0.5; 1.; 1.5; 2. |]);
  check_bool "single arm" true (Engine.grid ~lo:3. ~hi:7. ~arms:1 = [| 3. |]);
  check_bool "arms >= 1" true (raises (fun () ->
      Engine.grid ~lo:0. ~hi:1. ~arms:0));
  check_bool "lo <= hi" true (raises (fun () ->
      Engine.grid ~lo:2. ~hi:1. ~arms:3))

(* Brute-force reference: filter, argmax, explicit runner-up scan. *)
let reference ~bids ~reserves =
  let m = Array.length bids in
  let surviving =
    List.filter (fun i -> bids.(i) >= reserves.(i)) (List.init m Fun.id)
  in
  match surviving with
  | [] -> Engine.No_sale
  | first :: rest ->
      let winner =
        List.fold_left
          (fun w i -> if bids.(i) > bids.(w) then i else w)
          first rest
      in
      let runner_up =
        match List.filter (fun i -> i <> winner) surviving with
        | [] -> None
        | j :: tl ->
            Some
              (List.fold_left (fun acc i -> Float.max acc bids.(i)) bids.(j) tl)
      in
      let price =
        match runner_up with
        | Some r -> Float.max reserves.(winner) r
        | None -> reserves.(winner)
      in
      Engine.Sale { winner; price; runner_up }

(* Quarter-integer bids and reserves force plenty of ties and
   filtered bidders; reserve code 13 maps to the +inf exclusion. *)
let round_arb =
  QCheck.(
    map
      (fun entries ->
        let entries = Array.of_list entries in
        let bids = Array.map (fun (b, _) -> float_of_int b /. 4.) entries in
        let reserves =
          Array.map
            (fun (_, r) -> if r = 13 then infinity else float_of_int r /. 4.)
            entries
        in
        (bids, reserves))
      (list_of_size Gen.(int_range 1 6) (pair (int_range 0 12) (int_range 0 13))))

let clear_props =
  [
    prop "clear matches the brute-force reference" 500 round_arb
      (fun (bids, reserves) ->
        Engine.clear ~bids ~reserves = reference ~bids ~reserves);
    prop "sale price sits between the winner's reserve and bid" 500 round_arb
      (fun (bids, reserves) ->
        match Engine.clear ~bids ~reserves with
        | Engine.No_sale -> true
        | Engine.Sale { winner; price; _ } ->
            reserves.(winner) <= price && price <= bids.(winner));
  ]

(* ------------------------------------------------------------------ *)
(* Run driver                                                          *)
(* ------------------------------------------------------------------ *)

(* Two hand-computed rounds: floor clamps round 1's zero reserves up
   to 1.5, filtering bidder 1 (bid 1.) and flooring the price. *)
let tiny_stream =
  let bids = [| [| 5.; 4. |]; [| 2.; 1. |] |] in
  let floors = [| 0.; 1.5 |] in
  let x = Vec.of_list [ 1. ] in
  ((fun _ -> x), (fun t -> floors.(t)), fun t -> bids.(t))

let test_run_accounting () =
  let feature, floor, bids = tiny_stream in
  let totals, marks =
    Engine.run
      ~checkpoints:[| 1; 2 |]
      (Engine.fixed ~name:"zero" ~reserves:[| 0.; 0. |])
      ~rounds:2 ~feature ~floor ~bids ()
  in
  check_float "round 1 second price, round 2 floored" (4. +. 1.5)
    totals.Engine.revenue;
  check_float "welfare sums winning bids" (5. +. 2.) totals.Engine.welfare;
  check_int "both rounds cleared" 2 totals.Engine.sales;
  check_float "first checkpoint" 4. marks.(0);
  check_float "second checkpoint" 5.5 marks.(1)

let test_run_validation () =
  let feature, floor, bids = tiny_stream in
  let policy = Engine.fixed ~name:"zero" ~reserves:[| 0.; 0. |] in
  check_bool "rounds >= 1" true (raises (fun () ->
      Engine.run policy ~rounds:0 ~feature ~floor ~bids ()));
  check_bool "checkpoint out of range" true (raises (fun () ->
      Engine.run ~checkpoints:[| 3 |] policy ~rounds:2 ~feature ~floor ~bids ()));
  check_bool "checkpoints strictly increasing" true (raises (fun () ->
      Engine.run ~checkpoints:[| 2; 2 |] policy ~rounds:2 ~feature ~floor
        ~bids ()));
  check_bool "reserve vector length" true (raises (fun () ->
      Engine.run
        (Engine.fixed ~name:"short" ~reserves:[| 0. |])
        ~rounds:2 ~feature ~floor ~bids ()))

(* ------------------------------------------------------------------ *)
(* Hindsight benchmarks                                                *)
(* ------------------------------------------------------------------ *)

let bench_stream seed ~bidders ~rounds =
  Bids.make ~affinity_spread:0.5 ~seed ~dim:3 ~bidders ~rounds
    ~noise:(Bids.Gaussian 0.3) ()

let benchmark_props =
  [
    prop "coordinate ascent never loses to the uniform scan" 20
      QCheck.(pair (int_range 1 10_000) (int_range 2 4))
      (fun (seed, bidders) ->
        let rounds = 40 in
        let s = bench_stream seed ~bidders ~rounds in
        let grid = Engine.grid ~lo:0. ~hi:(Bids.payoff_bound s) ~arms:9 in
        let floor = Bids.floor s and bids = Bids.bids s in
        let _, uniform_rev = Engine.best_fixed_uniform ~grid ~rounds ~floor ~bids in
        let _, vector_rev =
          Engine.best_fixed_vector ~grid ~bidders ~rounds ~floor ~bids ()
        in
        vector_rev >= uniform_rev -. 1e-9);
    prop "reported OPT revenue matches replaying the vector" 20
      QCheck.(int_range 1 10_000)
      (fun seed ->
        let bidders = 3 and rounds = 40 in
        let s = bench_stream seed ~bidders ~rounds in
        let grid = Engine.grid ~lo:0. ~hi:(Bids.payoff_bound s) ~arms:9 in
        let floor = Bids.floor s and bids = Bids.bids s in
        let vector, reported =
          Engine.best_fixed_vector ~grid ~bidders ~rounds ~floor ~bids ()
        in
        let totals, _ =
          Engine.run
            (Engine.fixed ~name:"opt" ~reserves:vector)
            ~rounds ~feature:(Bids.feature s) ~floor ~bids ()
        in
        abs_float (totals.Engine.revenue -. reported) < 1e-6);
  ]

(* ------------------------------------------------------------------ *)
(* Policies                                                            *)
(* ------------------------------------------------------------------ *)

let drive_policy policy s =
  let rounds = Bids.rounds s in
  Engine.run
    ~checkpoints:[| rounds / 2; rounds |]
    policy ~rounds ~feature:(Bids.feature s) ~floor:(Bids.floor s)
    ~bids:(Bids.bids s) ()

let learner_setup seed =
  let s = bench_stream seed ~bidders:3 ~rounds:120 in
  let grid = Engine.grid ~lo:0. ~hi:(Bids.payoff_bound s) ~arms:9 in
  (s, grid, Bids.payoff_bound s)

let test_learner_determinism () =
  let run_twice make =
    let once () =
      let s, grid, payoff_bound = learner_setup 7 in
      let policy =
        make ~grid ~payoff_bound ~horizon:(Bids.rounds s) ~rng:(Rng.create 11)
      in
      drive_policy policy s
    in
    check_bool "replays bit-for-bit" true (once () = once ())
  in
  run_twice (fun ~grid ~payoff_bound ~horizon ~rng ->
      Policies.ew ~grid ~bidders:3 ~payoff_bound ~horizon ~rng ());
  run_twice (fun ~grid ~payoff_bound ~horizon ~rng ->
      Policies.ew ~bandit:true ~grid ~bidders:3 ~payoff_bound ~horizon ~rng ());
  run_twice (fun ~grid ~payoff_bound ~horizon ~rng ->
      Policies.ftpl ~grid ~bidders:3 ~payoff_bound ~horizon ~rng ());
  run_twice (fun ~grid ~payoff_bound ~horizon ~rng ->
      Policies.ftpl ~bandit:true ~grid ~bidders:3 ~payoff_bound ~horizon ~rng ())

let test_learners_beat_floor_only () =
  (* On a dispersed stream the full-information learners must extract
     strictly more than never reserving above the floor. *)
  let s = bench_stream 5 ~bidders:2 ~rounds:800 in
  let grid = Engine.grid ~lo:0. ~hi:(Bids.payoff_bound s) ~arms:9 in
  let payoff_bound = Bids.payoff_bound s in
  let horizon = Bids.rounds s in
  let rate = 24. *. Dm_ml.Exp_weights.default_rate ~arms:9 ~horizon in
  let revenue policy =
    let totals, _ = drive_policy policy s in
    totals.Engine.revenue
  in
  let floor_only =
    revenue (Engine.fixed ~name:"floor-only" ~reserves:[| 0.; 0. |])
  in
  let ew =
    revenue
      (Policies.ew ~rate ~grid ~bidders:2 ~payoff_bound ~horizon
         ~rng:(Rng.create 2) ())
  in
  let ftpl =
    revenue
      (Policies.ftpl ~rate ~grid ~bidders:2 ~payoff_bound ~horizon
         ~rng:(Rng.create 3) ())
  in
  check_bool "ew above floor-only" true (ew > floor_only);
  check_bool "ftpl above floor-only" true (ftpl > floor_only)

let ellipsoid_policy () =
  let dim = 3 in
  let cfg =
    Mechanism.config
      ~variant:(Mechanism.with_reserve_and_uncertainty ~delta:0.01)
      ~epsilon:0.5 ()
  in
  let mech =
    Mechanism.create cfg (Ellipsoid.ball ~dim ~radius:(1.5 *. sqrt 6.))
  in
  Policies.ellipsoid ~bidders:2 ~mechanism:mech ()

let test_ellipsoid_policy () =
  let policy = ellipsoid_policy () in
  let x = Vec.of_list [ 0.5; 0.5; 0.5 ] in
  let reserves = policy.Engine.decide ~round:0 ~x ~floor:0.2 in
  check_int "one reserve per bidder" 2 (Array.length reserves);
  check_bool "posted price is uniform across bidders" true
    (reserves.(0) = reserves.(1));
  (* decide/observe strictly alternate: the round must match. *)
  check_bool "observe without matching decide" true
    (raises (fun () ->
         policy.Engine.observe ~round:5 ~x ~floor:0.2 ~bids:[| 1.; 1. |]
           ~reserves:[| 0.2; 0.2 |] Engine.No_sale));
  let fresh = ellipsoid_policy () in
  check_bool "observe before any decide" true
    (raises (fun () ->
         fresh.Engine.observe ~round:0 ~x ~floor:0.2 ~bids:[| 1.; 1. |]
           ~reserves:[| 0.2; 0.2 |] Engine.No_sale))

(* ------------------------------------------------------------------ *)

let () = Test_env.install_pool_from_env ()

let () =
  Alcotest.run "dm_auction"
    [
      ( "clear",
        [
          Alcotest.test_case "second price" `Quick test_clear_second_price;
          Alcotest.test_case "reserve binding" `Quick test_clear_reserve_binding;
          Alcotest.test_case "filters all" `Quick test_clear_filters_all;
          Alcotest.test_case "tie-break" `Quick test_clear_tie_break;
          Alcotest.test_case "eager hand-off" `Quick test_clear_eager_handoff;
          Alcotest.test_case "infinite reserve" `Quick
            test_clear_infinite_reserve_excludes;
          Alcotest.test_case "validation" `Quick test_clear_validation;
          Alcotest.test_case "accounting" `Quick test_accounting;
          Alcotest.test_case "grid" `Quick test_grid;
        ]
        @ clear_props );
      ( "run",
        [
          Alcotest.test_case "accounting" `Quick test_run_accounting;
          Alcotest.test_case "validation" `Quick test_run_validation;
        ] );
      ("benchmarks", benchmark_props);
      ( "policies",
        [
          Alcotest.test_case "learner determinism" `Slow
            test_learner_determinism;
          Alcotest.test_case "learners beat floor-only" `Slow
            test_learners_beat_floor_only;
          Alcotest.test_case "ellipsoid bridge" `Quick test_ellipsoid_policy;
        ] );
    ]
