(* Smoke and format tests for the dm_experiments drivers: each must
   produce a non-empty, well-formed report at tiny scale, and the
   analytical checks must hold. *)

module Table = Dm_experiments.Table
module App1 = Dm_experiments.App1
module App2 = Dm_experiments.App2
module App3 = Dm_experiments.App3
module Analysis = Dm_experiments.Analysis
module Ablation = Dm_experiments.Ablation
module Baselines = Dm_experiments.Baselines

let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let render f =
  let buf = Buffer.create 4096 in
  let ppf = Format.formatter_of_buffer buf in
  f ppf;
  Format.pp_print_flush ppf ();
  Buffer.contents buf

let contains haystack needle =
  let h = String.length haystack and n = String.length needle in
  let rec scan i = i + n <= h && (String.sub haystack i n = needle || scan (i + 1)) in
  n = 0 || scan 0

(* ------------------------------------------------------------------ *)

let test_table_rendering () =
  let out =
    render (fun ppf ->
        Table.print ppf ~title:"demo" ~header:[ "a"; "b" ]
          [ [ "1"; "2" ]; [ "30"; "40" ] ])
  in
  check_bool "title" true (contains out "demo");
  check_bool "header" true (contains out "a");
  check_bool "row" true (contains out "40");
  check_string "pct" "7.77%" (Table.fmt_pct 0.0777);
  check_string "g" "3.142" (Table.fmt_g 3.14159)

let test_sparkline () =
  check_string "empty" "" (Table.sparkline [||]);
  check_string "monotone" "▁▃▅█" (Table.sparkline [| 0.; 1.; 2.; 3.5 |]);
  check_string "flat series renders low" "▁▁▁" (Table.sparkline [| 2.; 2.; 2. |]);
  check_string "non-finite as space" "▁ █" (Table.sparkline [| 0.; nan; 1. |])

let test_checkpoints_shape () =
  let cps = App1.checkpoints ~rounds:1000 ~count:5 in
  check_bool "ends at rounds" true (cps.(Array.length cps - 1) = 1000);
  let sorted = Array.copy cps in
  Array.sort compare sorted;
  check_bool "strictly increasing" true (sorted = cps);
  check_bool "positive" true (Array.for_all (fun c -> c >= 1) cps)

let test_fig1_driver () =
  let out = render Analysis.fig1 in
  check_bool "mentions regret" true (contains out "regret");
  check_bool "shows the jump" true (contains out "rejected");
  check_bool "shows underpricing" true (contains out "sold, underpriced")

let test_fig4_driver_small () =
  (* Tiny scale: n = 1 panel runs at its floor of 100 rounds. *)
  let out = render (fun ppf -> App1.fig4 ~scale:0.01 ~seed:1 ppf) in
  check_bool "panel n=1" true (contains out "n = 1,");
  check_bool "panel n=100" true (contains out "n = 100");
  check_bool "variant columns" true
    (contains out "pure" && contains out "reserve+unc")

let test_table1_driver_small () =
  let out = render (fun ppf -> App1.table1 ~scale:0.01 ~seed:1 ppf) in
  check_bool "columns" true
    (contains out "market value" && contains out "posted")

let test_fig5a_driver_small () =
  let out = render (fun ppf -> App1.fig5a ~scale:0.002 ~seed:1 ppf) in
  check_bool "baseline column" true (contains out "risk-averse");
  check_bool "paper reference" true (contains out "18.16%")

let test_fig5b_driver_small () =
  let out = render (fun ppf -> App2.fig5b ~scale:0.03 ~seed:2 ppf) in
  check_bool "ratio columns" true
    (contains out "reserve 0.4" && contains out "risk-averse 0.8");
  check_bool "mse reported" true (contains out "MSE")

let test_fig5c_driver_small () =
  let out = render (fun ppf -> App3.fig5c ~scale:0.02 ~seed:2 ppf) in
  check_bool "sparse and dense" true
    (contains out "sparse" && contains out "dense");
  check_bool "both dims" true (contains out "n = 128" && contains out "n = 1024")

let test_lemma8_driver () =
  let out = render (fun ppf -> Analysis.lemma8 ~dim:2 ~rounds:600 ppf) in
  check_bool "both variants" true
    (contains out "guarded (paper)" && contains out "conservative cuts allowed")

let test_theorem3_driver () =
  let out = render (fun ppf -> Analysis.theorem3 ~seed:1 ppf) in
  check_bool "log column" true (contains out "regret / log T")

let test_lemma2_driver () =
  let out = render (fun ppf -> Analysis.lemma2_check ~samples:200 ~seed:1 ppf) in
  (* The bound must hold: the reported max difference is ≤ 0, so the
     rendered number starts with '-' or is exactly 0. *)
  check_bool "bound holds" true
    (contains out "-0." || contains out " 0.000000")

let test_lemma45_driver () =
  let out = render (fun ppf -> Analysis.lemma45_check ~dim:4 ~rounds:400 ppf) in
  check_bool "both bounds hold" true (not (contains out "NO"));
  check_bool "reports the floor" true (contains out "min over run")

let test_theorem2_driver () =
  let out = render (fun ppf -> Analysis.theorem2 ~scale:0.05 ppf) in
  check_bool "all four models" true
    (contains out "log-linear" && contains out "log-log"
    && contains out "logistic" && contains out "kernelized")

let test_diagnostics () =
  (* A rank-2 sample: two independent directions plus noise-free
     copies. *)
  let m =
    Dm_linalg.Mat.init 50 4 (fun i j ->
        let a = float_of_int (i mod 5) and b = float_of_int (i mod 3) in
        match j with 0 -> a | 1 -> b | 2 -> a +. b | _ -> 2. *. a)
  in
  Alcotest.(check int) "rank 2" 2 (Dm_experiments.Diagnostics.effective_rank m);
  check_bool "bad threshold" true
    (match Dm_experiments.Diagnostics.effective_rank ~threshold:0. m with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_baselines_driver () =
  let out = render (fun ppf -> Baselines.compare ~scale:0.1 ppf) in
  check_bool "three policies" true
    (contains out "ellipsoid" && contains out "sgd" && contains out "risk-averse")

let test_ablation_drivers () =
  let out1 = render (fun ppf -> Ablation.epsilon_sweep ~rounds:500 ppf) in
  check_bool "epsilon grid" true (contains out1 "125x");
  let out2 = render (fun ppf -> Ablation.delta_sweep ~rounds:500 ppf) in
  check_bool "delta grid" true (contains out2 "0.100");
  let out3 = render (fun ppf -> Ablation.aggregation_sweep ~rounds:500 ppf) in
  check_bool "partition grid" true (contains out3 "n (partitions)")

let test_coldstart_drivers () =
  let out = render (fun ppf -> App1.coldstart ~scale:0.02 ~seeds:2 ppf) in
  check_bool "reduction columns" true (contains out "reserve vs pure");
  let out2 = render (fun ppf -> App2.coldstart ~scale:0.3 ~seeds:2 ppf) in
  check_bool "horizon columns" true (contains out2 "t = 1000")

(* ------------------------------------------------------------------ *)

module Runner = Dm_experiments.Runner

let test_runner_map () =
  let xs = Array.init 37 Fun.id in
  let f x = (x * x) + 1 in
  Alcotest.(check (array int))
    "parallel map matches serial" (Array.map f xs)
    (Runner.map ~jobs:4 f xs);
  Alcotest.(check (array int)) "empty input" [||] (Runner.map ~jobs:4 f [||]);
  check_bool "jobs above cell count" true
    (Runner.map ~jobs:16 f [| 3 |] = [| 10 |]);
  check_bool "invalid jobs rejected" true
    (match Runner.map ~jobs:0 f xs with
    | _ -> false
    | exception Invalid_argument _ -> true);
  (* A failing cell re-raises in the caller after every domain joins. *)
  check_bool "exception propagates" true
    (match
       Runner.map ~jobs:4 (fun x -> if x = 11 then failwith "boom" else x) xs
     with
    | _ -> false
    | exception Failure msg -> msg = "boom")

let test_runner_render_deterministic () =
  (* The tentpole contract: output bytes never depend on [jobs]. *)
  let drivers =
    [
      ("fig4", fun ~jobs ppf -> App1.fig4 ~scale:0.01 ~seed:1 ~jobs ppf);
      ( "coldstart app1",
        fun ~jobs ppf -> App1.coldstart ~scale:0.02 ~seeds:2 ~jobs ppf );
      ( "epsilon sweep",
        fun ~jobs ppf -> Ablation.epsilon_sweep ~rounds:500 ~jobs ppf );
      ( "param dist sweep",
        fun ~jobs ppf -> Ablation.param_dist_sweep ~rounds:500 ~jobs ppf );
      ("baselines", fun ~jobs ppf -> Baselines.compare ~scale:0.05 ~jobs ppf);
    ]
  in
  List.iter
    (fun (name, driver) ->
      check_string name
        (render (fun ppf -> driver ~jobs:1 ppf))
        (render (fun ppf -> driver ~jobs:4 ppf)))
    drivers

module Pool = Dm_linalg.Pool

let test_runner_explicit_pool () =
  (* A shared pool gives the same bytes as per-call domain spawning,
     and an explicit size-1 pool degrades to the serial path. *)
  let reference = render (fun ppf -> App1.fig4 ~scale:0.01 ~seed:1 ~jobs:1 ppf) in
  Pool.with_pool ~jobs:4 (fun pool ->
      check_string "shared pool" reference
        (render (fun ppf -> App1.fig4 ~scale:0.01 ~seed:1 ~pool ppf)));
  Pool.with_pool ~jobs:1 (fun pool ->
      check_string "size-1 pool" reference
        (render (fun ppf -> App1.fig4 ~scale:0.01 ~seed:1 ~pool ppf)))

let test_incell_kernel_determinism () =
  (* Above the n >= 512 threshold the mechanism's cut kernels fan out
     over the default pool; the pricing trajectory must stay
     byte-identical to the serial run. *)
  let module Vec = Dm_linalg.Vec in
  let module Ellipsoid = Dm_market.Ellipsoid in
  let module Mechanism = Dm_market.Mechanism in
  let module Rng = Dm_prob.Rng in
  let module Dist = Dm_prob.Dist in
  let dim = 520 in
  let run () =
    let mech =
      Mechanism.create
        (Mechanism.config ~variant:Mechanism.with_reserve ~epsilon:1e-9 ())
        (Ellipsoid.ball ~dim ~radius:2.)
    in
    let rng = Rng.create 12 in
    let buf = Buffer.create 4096 in
    for _ = 1 to 30 do
      let x = Vec.normalize (Dist.normal_vec rng ~dim) in
      let d = Mechanism.decide mech ~x ~reserve:neg_infinity in
      (match d with
      | Mechanism.Post { price; _ } ->
          Buffer.add_string buf (Printf.sprintf "%h\n" price)
      | Mechanism.Skip -> Buffer.add_string buf "skip\n");
      Mechanism.observe mech ~x d ~accepted:(Rng.bool rng)
    done;
    let e = Mechanism.ellipsoid mech in
    Buffer.add_string buf
      (Printf.sprintf "vol %h\n" (Ellipsoid.log_volume_factor e));
    for i = 0 to dim - 1 do
      Buffer.add_string buf (Printf.sprintf "%h\n" (Vec.get e.Ellipsoid.center i))
    done;
    Buffer.contents buf
  in
  let serial = run () in
  List.iter
    (fun jobs ->
      Pool.with_pool ~jobs (fun p ->
          Pool.set_default (Some p);
          Fun.protect ~finally:(fun () -> Pool.set_default None) (fun () ->
              check_string
                (Printf.sprintf "pooled trajectory, jobs=%d" jobs)
                serial (run ()))))
    [ 2; 4 ]

(* ------------------------------------------------------------------ *)

let test_longrun_smoke () =
  (* scale 1e-4 clamps the horizon to its 100-round floor; all four
     variants must still verify bit-identical against the sequential
     reference. *)
  let out =
    render (fun ppf -> Dm_experiments.Longrun.report ~scale:0.0001 ~seed:3 ppf)
  in
  check_bool "all four variants" true
    (contains out "pure" && contains out "reserve+unc");
  check_bool "merge verified" true (contains out "4/4 variants bit-identical");
  check_bool "no mismatch" true (not (contains out "MISMATCH"))

let test_longrun_jobs_independent () =
  let at jobs =
    render (fun ppf ->
        Dm_experiments.Longrun.report ~scale:0.0001 ~seed:3 ~jobs ppf)
  in
  check_string "jobs-independent bytes" (at 1) (at 2);
  Pool.with_pool ~jobs:3 (fun pool ->
      check_string "explicit pool bytes" (at 1)
        (render (fun ppf ->
             Dm_experiments.Longrun.report ~scale:0.0001 ~seed:3 ~pool ppf)))

(* ------------------------------------------------------------------ *)

module Stress = Dm_experiments.Stress

let test_stress_smoke () =
  (* The CI configuration (default seed, bench scale): the closing
     verdict must read OK — robust wins every misspecified family and
     holds the stated margin on the paper stream. *)
  let out = render (fun ppf -> Stress.degradation ~scale:0.05 ~seed:42 ppf) in
  check_bool "all six families" true
    (contains out "paper" && contains out "drift" && contains out "switch"
    && contains out "student-t" && contains out "pareto"
    && contains out "strategic");
  check_bool "both mechanisms" true
    (contains out "vanilla" && contains out "robust");
  check_bool "lower-bound panel" true (contains out "Lemma-8");
  check_bool "greppable verdict" true
    (contains out "stress summary:" && contains out "OK")

let test_stress_jobs_independent () =
  let at jobs =
    render (fun ppf -> Stress.degradation ~scale:0.02 ~seed:1 ~jobs ppf)
  in
  check_string "jobs-independent bytes" (at 1) (at 4);
  Pool.with_pool ~jobs:3 (fun pool ->
      check_string "explicit pool bytes" (at 1)
        (render (fun ppf -> Stress.degradation ~scale:0.02 ~seed:1 ~pool ppf)))

module Auction = Dm_experiments.Auction

let test_auction_smoke () =
  let out = render (fun ppf -> Auction.revenue_vs_opt ~scale:0.05 ~seed:42 ppf) in
  check_bool "all policies" true
    (contains out "floor-only" && contains out "ew-bandit"
    && contains out "ftpl-bandit" && contains out "ellipsoid"
    && contains out "opt (fixed vector)");
  check_bool "all bidder panels" true
    (contains out " 2 " && contains out " 8 " && contains out " 32 ");
  check_bool "greppable verdict" true
    (contains out "auction summary:" && contains out "OK")

let test_auction_jobs_independent () =
  let at jobs =
    render (fun ppf -> Auction.revenue_vs_opt ~scale:0.05 ~seed:1 ~jobs ppf)
  in
  check_string "jobs-independent bytes" (at 1) (at 4);
  Pool.with_pool ~jobs:3 (fun pool ->
      check_string "explicit pool bytes" (at 1)
        (render (fun ppf -> Auction.revenue_vs_opt ~scale:0.05 ~seed:1 ~pool ppf)))

(* ------------------------------------------------------------------ *)

let () = Test_env.install_pool_from_env ()

let () =
  Alcotest.run "dm_experiments"
    [
      ( "drivers",
        [
          Alcotest.test_case "table rendering" `Quick test_table_rendering;
          Alcotest.test_case "sparkline" `Quick test_sparkline;
          Alcotest.test_case "checkpoints" `Quick test_checkpoints_shape;
          Alcotest.test_case "fig1" `Quick test_fig1_driver;
          Alcotest.test_case "fig4 (tiny)" `Slow test_fig4_driver_small;
          Alcotest.test_case "table1 (tiny)" `Slow test_table1_driver_small;
          Alcotest.test_case "fig5a (tiny)" `Slow test_fig5a_driver_small;
          Alcotest.test_case "fig5b (tiny)" `Slow test_fig5b_driver_small;
          Alcotest.test_case "fig5c (tiny)" `Slow test_fig5c_driver_small;
          Alcotest.test_case "lemma8" `Slow test_lemma8_driver;
          Alcotest.test_case "theorem3" `Slow test_theorem3_driver;
          Alcotest.test_case "lemma2" `Slow test_lemma2_driver;
          Alcotest.test_case "lemma45" `Slow test_lemma45_driver;
          Alcotest.test_case "theorem2 (tiny)" `Slow test_theorem2_driver;
          Alcotest.test_case "baselines (tiny)" `Slow test_baselines_driver;
          Alcotest.test_case "diagnostics rank" `Quick test_diagnostics;
          Alcotest.test_case "ablations (tiny)" `Slow test_ablation_drivers;
          Alcotest.test_case "coldstart (tiny)" `Slow test_coldstart_drivers;
        ] );
      ( "runner",
        [
          Alcotest.test_case "map semantics" `Quick test_runner_map;
          Alcotest.test_case "jobs-independent bytes" `Slow
            test_runner_render_deterministic;
          Alcotest.test_case "explicit pool bytes" `Slow
            test_runner_explicit_pool;
          Alcotest.test_case "in-cell kernel determinism (n = 520)" `Slow
            test_incell_kernel_determinism;
        ] );
      ( "stress",
        [
          Alcotest.test_case "smoke (tiny)" `Slow test_stress_smoke;
          Alcotest.test_case "jobs-independent bytes" `Slow
            test_stress_jobs_independent;
        ] );
      ( "longrun",
        [
          Alcotest.test_case "smoke (tiny)" `Quick test_longrun_smoke;
          Alcotest.test_case "jobs-independent bytes" `Slow
            test_longrun_jobs_independent;
        ] );
      ( "auction",
        [
          Alcotest.test_case "smoke (tiny)" `Slow test_auction_smoke;
          Alcotest.test_case "jobs-independent bytes" `Slow
            test_auction_jobs_independent;
        ] );
    ]
