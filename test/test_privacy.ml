(* Unit and property tests for the dm_privacy substrate. *)

module Vec = Dm_linalg.Vec
module Rng = Dm_prob.Rng
module Stats = Dm_prob.Stats
module Dp = Dm_privacy.Dp
module Comp = Dm_privacy.Compensation

let check_float = Alcotest.(check (float 1e-9))
let check_bool = Alcotest.(check bool)

let prop name count arb f =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name ~count:(Test_env.qcheck_count count) arb f)

(* ------------------------------------------------------------------ *)
(* Dp                                                                  *)
(* ------------------------------------------------------------------ *)

let test_query_validation () =
  check_bool "rejects empty owners" true
    (match Dp.make_query ~weights:[||] ~noise_scale:1. with
    | _ -> false
    | exception Invalid_argument _ -> true);
  check_bool "rejects zero noise" true
    (match Dp.make_query ~weights:[| 1. |] ~noise_scale:0. with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_variance_to_scale () =
  (* Laplace(λ) has variance 2λ², so λ = √(v/2). *)
  check_float "v=2 gives λ=1" 1. (Dp.variance_to_scale 2.);
  check_float "v=8 gives λ=2" 2. (Dp.variance_to_scale 8.)

let test_leakage_formula () =
  let q = Dp.make_query ~weights:[| 2.; -3.; 0. |] ~noise_scale:4. in
  let eps = Dp.leakage q ~data_ranges:[| 1.; 2.; 5. |] in
  check_float "owner 0" 0.5 (Vec.get eps 0);
  check_float "owner 1: |w| used" 1.5 (Vec.get eps 1);
  check_float "owner 2: zero weight leaks nothing" 0. (Vec.get eps 2);
  check_float "total" 2. (Dp.total_epsilon q ~data_ranges:[| 1.; 2.; 5. |])

let test_leakage_scaling () =
  (* Doubling the noise halves every leakage. *)
  let w = [| 1.; 2.; 3. |] and ranges = [| 1.; 1.; 1. |] in
  let q1 = Dp.make_query ~weights:w ~noise_scale:1. in
  let q2 = Dp.make_query ~weights:w ~noise_scale:2. in
  let e1 = Dp.leakage q1 ~data_ranges:ranges in
  let e2 = Dp.leakage q2 ~data_ranges:ranges in
  check_bool "halved" true
    (Vec.approx_equal (Vec.scale 0.5 e1) e2)

let test_answers () =
  let q = Dp.make_query ~weights:[| 1.; 2. |] ~noise_scale:0.5 in
  check_float "true answer" 8. (Dp.true_answer q ~data:[| 2.; 3. |]);
  (* Noisy answers are unbiased: average error goes to 0. *)
  let rng = Rng.create 42 in
  let o = Stats.online_create () in
  for _ = 1 to 20_000 do
    Stats.online_add o (Dp.noisy_answer rng q ~data:[| 2.; 3. |] -. 8.)
  done;
  check_bool "unbiased" true (abs_float (Stats.online_mean o) < 0.02)

let dp_props =
  [
    prop "leakage is non-negative" 100
      QCheck.(array_of_size (QCheck.Gen.int_range 1 20) (float_range (-5.) 5.))
      (fun w ->
        let q = Dp.make_query ~weights:w ~noise_scale:0.7 in
        let ranges = Vec.create (Array.length w) 1. in
        Array.for_all (fun e -> e >= 0.) (Dp.leakage q ~data_ranges:ranges));
    prop "total epsilon additive over owners" 100
      QCheck.(array_of_size (QCheck.Gen.int_range 1 20) (float_range (-5.) 5.))
      (fun w ->
        let q = Dp.make_query ~weights:w ~noise_scale:0.7 in
        let ranges = Vec.create (Array.length w) 2. in
        let eps = Dp.leakage q ~data_ranges:ranges in
        abs_float (Vec.sum eps -. Dp.total_epsilon q ~data_ranges:ranges)
        < 1e-9);
    prop "leakage monotone in weight magnitude" 100
      QCheck.(float_range 0. 10.)
      (fun w ->
        let mk w = Dp.make_query ~weights:[| w |] ~noise_scale:1. in
        let e w = Vec.get (Dp.leakage (mk w) ~data_ranges:[| 1. |]) 0 in
        e (w +. 1.) >= e w);
  ]

(* ------------------------------------------------------------------ *)
(* Compensation                                                        *)
(* ------------------------------------------------------------------ *)

let test_contract_validation () =
  check_bool "negative rate rejected" true
    (match Comp.linear ~rate:(-1.) with
    | _ -> false
    | exception Invalid_argument _ -> true);
  check_bool "negative cap rejected" true
    (match Comp.tanh_contract ~cap:(-1.) ~steepness:1. with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_amounts () =
  let lin = Comp.linear ~rate:2. in
  check_float "linear" 3. (Comp.amount lin 1.5);
  let th = Comp.tanh_contract ~cap:4. ~steepness:0.5 in
  check_float "tanh at 0" 0. (Comp.amount th 0.);
  check_float "tanh formula" (4. *. tanh 1.) (Comp.amount th 2.);
  check_bool "negative leakage rejected" true
    (match Comp.amount th (-0.1) with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_caps () =
  check_float "tanh cap" 4. (Comp.cap (Comp.tanh_contract ~cap:4. ~steepness:1.));
  check_float "zero linear cap" 0. (Comp.cap (Comp.linear ~rate:0.));
  check_bool "positive linear unbounded" true
    (Comp.cap (Comp.linear ~rate:1.) = infinity)

let test_total () =
  let contracts = [| Comp.linear ~rate:1.; Comp.tanh_contract ~cap:2. ~steepness:1. |] in
  let leakages = [| 0.5; 10. |] in
  (* tanh(10) ≈ 1 so the second owner is paid her cap. *)
  let t = Comp.total ~contracts ~leakages in
  check_bool "near 0.5 + 2" true (abs_float (t -. 2.5) < 1e-4);
  check_bool "length mismatch" true
    (match Comp.total ~contracts ~leakages:[| 1. |] with
    | _ -> false
    | exception Invalid_argument _ -> true)

let comp_props =
  [
    prop "amount non-negative and zero at zero" 100
      QCheck.(pair (float_range 0. 10.) (float_range 0. 10.))
      (fun (cap, steep) ->
        let c = Comp.tanh_contract ~cap ~steepness:steep in
        Comp.amount c 0. = 0. && Comp.amount c 3. >= 0.);
    prop "tanh amount monotone in leakage" 100
      QCheck.(triple (float_range 0.1 10.) (float_range 0.1 5.) (float_range 0. 10.))
      (fun (cap, steep, eps) ->
        let c = Comp.tanh_contract ~cap ~steepness:steep in
        Comp.amount c (eps +. 0.5) >= Comp.amount c eps);
    prop "tanh amount bounded by cap" 100
      QCheck.(pair (float_range 0.1 10.) (float_range 0. 100.))
      (fun (cap, eps) ->
        let c = Comp.tanh_contract ~cap ~steepness:1. in
        Comp.amount c eps <= cap +. 1e-12);
    prop "tanh is approximately linear near zero" 50
      QCheck.(float_range 0.1 4.)
      (fun cap ->
        let steep = 0.5 in
        let c = Comp.tanh_contract ~cap ~steepness:steep in
        let eps = 1e-4 in
        abs_float (Comp.amount c eps -. (cap *. steep *. eps)) < 1e-9);
    prop "total is additive across disjoint owner sets" 50
      QCheck.(array_of_size (QCheck.Gen.int_range 2 12) (float_range 0. 5.))
      (fun leakages ->
        let n = Array.length leakages in
        let contracts = Array.make n (Comp.tanh_contract ~cap:3. ~steepness:0.7) in
        let k = n / 2 in
        let part pos len =
          Comp.total
            ~contracts:(Array.sub contracts pos len)
            ~leakages:(Vec.slice leakages ~pos ~len)
        in
        let whole = Comp.total ~contracts ~leakages in
        abs_float (whole -. (part 0 k +. part k (n - k))) < 1e-9);
  ]

(* ------------------------------------------------------------------ *)
(* Composition                                                         *)
(* ------------------------------------------------------------------ *)

module Compo = Dm_privacy.Composition

let test_basic_composition () =
  let total = Compo.basic [ Compo.pure 0.5; Compo.approx ~eps:0.3 ~del:1e-6 ] in
  check_float "eps adds" 0.8 total.Compo.eps;
  check_float "del adds" 1e-6 total.Compo.del;
  check_bool "negative rejected" true
    (match Compo.pure (-1.) with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_advanced_composition () =
  (* Dwork–Roth Thm 3.20 at k = 100, ε = 0.01, slack = 1e-5. *)
  let l = Compo.approx ~eps:0.01 ~del:1e-8 in
  let a = Compo.advanced ~k:100 ~slack:1e-5 l in
  let expected_eps =
    (sqrt (200. *. log 1e5) *. 0.01) +. (100. *. 0.01 *. (exp 0.01 -. 1.))
  in
  check_bool "eps formula" true (abs_float (a.Compo.eps -. expected_eps) < 1e-9);
  check_bool "del" true (abs_float (a.Compo.del -. ((100. *. 1e-8) +. 1e-5)) < 1e-12);
  (* Advanced beats basic for many small-ε queries. *)
  check_bool "advanced wins at small eps" true (a.Compo.eps < 100. *. 0.01);
  let b = Compo.best_of ~k:100 ~slack:1e-5 l in
  check_bool "best_of picks it" true (b.Compo.eps = a.Compo.eps);
  (* ...but basic wins for one large-ε query. *)
  let big = Compo.pure 2. in
  let best = Compo.best_of ~k:2 ~slack:1e-5 big in
  check_bool "basic wins at large eps" true (best.Compo.eps = 4.)

let test_gaussian_scale () =
  let sigma =
    Compo.gaussian_scale ~sensitivity:1. (Compo.approx ~eps:0.5 ~del:1e-5)
  in
  check_bool "formula" true
    (abs_float (sigma -. (sqrt (2. *. log (1.25 /. 1e-5)) /. 0.5)) < 1e-9);
  check_bool "pure rejected" true
    (match Compo.gaussian_scale ~sensitivity:1. (Compo.pure 0.5) with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_accountant () =
  let a = Compo.accountant ~owners:3 ~budget:(Compo.pure 1.) in
  check_bool "first spend fits" true (Compo.spend a ~owner:0 (Compo.pure 0.6));
  check_bool "second spend overruns" false (Compo.spend a ~owner:0 (Compo.pure 0.6));
  check_bool "other owners untouched" true
    ((Compo.spent a ~owner:1).Compo.eps = 0.);
  check_bool "remaining floored at zero" true
    ((Compo.remaining a ~owner:0).Compo.eps = 0.);
  Alcotest.(check (list int)) "exhausted list" [ 0 ] (Compo.exhausted a);
  check_bool "owner bounds checked" true
    (match Compo.spent a ~owner:5 with
    | _ -> false
    | exception Invalid_argument _ -> true)

let composition_props =
  [
    prop "basic composition is order-independent" 100
      QCheck.(small_list (float_range 0. 1.))
      (fun epss ->
        let levels = List.map Compo.pure epss in
        let a = Compo.basic levels in
        let b = Compo.basic (List.rev levels) in
        abs_float (a.Compo.eps -. b.Compo.eps) < 1e-9);
    prop "advanced eps grows sublinearly in k for small eps" 50
      QCheck.(int_range 4 400)
      (fun k ->
        let l = Compo.pure 0.01 in
        let a = Compo.advanced ~k ~slack:1e-6 l in
        let a4k = Compo.advanced ~k:(4 * k) ~slack:1e-6 l in
        (* Quadrupling k should far less than quadruple ε. *)
        a4k.Compo.eps < 3. *. a.Compo.eps);
    prop "accountant spends add up" 50
      QCheck.(small_list (float_range 0. 0.2))
      (fun epss ->
        let a = Compo.accountant ~owners:1 ~budget:(Compo.pure 100.) in
        List.iter (fun e -> ignore (Compo.spend a ~owner:0 (Compo.pure e))) epss;
        abs_float
          ((Compo.spent a ~owner:0).Compo.eps
          -. List.fold_left ( +. ) 0. epss)
        < 1e-9);
  ]

(* ------------------------------------------------------------------ *)

let () = Test_env.install_pool_from_env ()

let () =
  Alcotest.run "dm_privacy"
    [
      ( "dp",
        [
          Alcotest.test_case "query validation" `Quick test_query_validation;
          Alcotest.test_case "variance to scale" `Quick test_variance_to_scale;
          Alcotest.test_case "leakage formula" `Quick test_leakage_formula;
          Alcotest.test_case "leakage scaling" `Quick test_leakage_scaling;
          Alcotest.test_case "answers" `Quick test_answers;
        ]
        @ dp_props );
      ( "compensation",
        [
          Alcotest.test_case "validation" `Quick test_contract_validation;
          Alcotest.test_case "amounts" `Quick test_amounts;
          Alcotest.test_case "caps" `Quick test_caps;
          Alcotest.test_case "totals" `Quick test_total;
        ]
        @ comp_props );
      ( "composition",
        [
          Alcotest.test_case "basic" `Quick test_basic_composition;
          Alcotest.test_case "advanced" `Quick test_advanced_composition;
          Alcotest.test_case "gaussian scale" `Quick test_gaussian_scale;
          Alcotest.test_case "accountant" `Quick test_accountant;
        ]
        @ composition_props );
    ]
