(* Integration tests for the dm_apps application wiring (Sections V-A,
   V-B, V-C of the paper) at reduced scale. *)

module Vec = Dm_linalg.Vec
module Mechanism = Dm_market.Mechanism
module Broker = Dm_market.Broker
module Model = Dm_market.Model
module Noisy_query = Dm_apps.Noisy_query
module Rental = Dm_apps.Rental
module Impression = Dm_apps.Impression

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* App 1: noisy linear query                                           *)
(* ------------------------------------------------------------------ *)

let nq_setup = lazy (Noisy_query.make ~owners:120 ~seed:11 ~dim:10 ~rounds:2000 ())

let test_nq_parameters () =
  let s = Lazy.force nq_setup in
  check_int "dim" 10 s.Noisy_query.dim;
  check_bool "radius = 2√n" true
    (abs_float (s.Noisy_query.radius -. (2. *. sqrt 10.)) < 1e-9);
  check_bool "epsilon = n²/T" true
    (abs_float (s.Noisy_query.epsilon -. (100. /. 2000.)) < 1e-12);
  (* ‖θ*‖ = √(2n). *)
  check_bool "theta norm" true
    (abs_float (Vec.norm2 s.Noisy_query.model.Model.theta -. sqrt 20.) < 1e-9);
  (* σ reproduces δ through the buffer formula. *)
  check_bool "sigma consistent" true
    (abs_float
       (Dm_prob.Subgaussian.buffer ~sigma:s.Noisy_query.sigma ~horizon:2000 ()
       -. s.Noisy_query.delta)
    < 1e-12)

let test_nq_workload_properties () =
  let s = Lazy.force nq_setup in
  let workload = Noisy_query.workload s in
  for t = 0 to 199 do
    let x, reserve = workload t in
    check_bool "unit norm features" true (abs_float (Vec.norm2 x -. 1.) < 1e-9);
    check_bool "non-negative features" true (Array.for_all (fun v -> v >= 0.) x);
    check_bool "reserve = sum of features" true
      (abs_float (reserve -. Vec.sum x) < 1e-9)
  done;
  (* The workload replays identically (shared across variants). *)
  let x1, q1 = workload 7 and x2, q2 = workload 7 in
  check_bool "replayable" true (Vec.approx_equal x1 x2 && q1 = q2)

let test_nq_market_exceeds_reserve () =
  let s = Lazy.force nq_setup in
  let workload = Noisy_query.workload s in
  let above = ref 0 in
  for t = 0 to 499 do
    let x, reserve = workload t in
    if Model.value s.Noisy_query.model x >= reserve then incr above
  done;
  (* "the market value ... is no less than its reserve price with a
     high probability" *)
  check_bool "v >= q w.h.p." true (!above > 450)

let test_nq_variants_ordering () =
  let s = Lazy.force nq_setup in
  let pure = Noisy_query.run s Mechanism.pure in
  let reserve = Noisy_query.run s Mechanism.with_reserve in
  let baseline = Noisy_query.run_baseline s in
  check_bool "mechanism beats risk-averse baseline" true
    (reserve.Broker.regret_ratio < baseline.Broker.regret_ratio);
  check_bool "regret ratios sane" true
    (pure.Broker.regret_ratio > 0. && pure.Broker.regret_ratio < 0.5);
  (* The exploratory-round counter respects the Lemma 7 bound. *)
  check_bool "Te within bound" true
    (float_of_int reserve.Broker.exploratory
    <= Mechanism.te_upper_bound ~radius:s.Noisy_query.radius ~feature_bound:1.
         ~dim:s.Noisy_query.dim ~epsilon:s.Noisy_query.epsilon)

let test_nq_regret_ratio_declines () =
  let s = Lazy.force nq_setup in
  let r = Noisy_query.run s Mechanism.with_reserve in
  let series = r.Broker.series in
  let n = Array.length series.Broker.checkpoints in
  (* The ratio at the end is lower than at 5% of the horizon. *)
  let early_idx = ref 0 in
  Array.iteri
    (fun i c -> if c <= s.Noisy_query.rounds / 20 then early_idx := i)
    series.Broker.checkpoints;
  check_bool "ratio declines" true
    (series.Broker.regret_ratio.(n - 1)
    < series.Broker.regret_ratio.(!early_idx))

let test_nq_uncertainty_epsilon_floor () =
  let s = Lazy.force nq_setup in
  let m =
    Noisy_query.mechanism s (Mechanism.with_uncertainty ~delta:s.Noisy_query.delta)
  in
  let cfg = Mechanism.config_of m in
  check_bool "floor applied" true
    (cfg.Mechanism.epsilon
    >= 2.5 *. float_of_int s.Noisy_query.dim *. s.Noisy_query.delta -. 1e-12)

let test_nq_effective_epsilon_boundary () =
  (* ε = 2nδ exactly (dim 10, δ = 0.01, T = 500 so n²/T = 2nδ): the
     stall bound itself, where buffered cuts first freeze.  The 2.5nδ
     floor must still lift it, visibly via effective_epsilon. *)
  let s = Noisy_query.make ~owners:120 ~seed:11 ~dim:10 ~rounds:500 () in
  let delta = s.Noisy_query.delta in
  let unc = Mechanism.with_uncertainty ~delta in
  check_bool "setup epsilon is exactly 2ndelta" true
    (abs_float (s.Noisy_query.epsilon -. (2. *. 10. *. delta)) < 1e-12);
  check_bool "floored at the boundary" true (Noisy_query.epsilon_floored s unc);
  check_bool "effective = 2.5ndelta" true
    (abs_float (Noisy_query.effective_epsilon s unc -. (2.5 *. 10. *. delta))
    < 1e-12);
  (* δ = 0 variants never hit the floor. *)
  check_bool "pure not floored" false
    (Noisy_query.epsilon_floored s Mechanism.pure);
  check_bool "pure effective = setup epsilon" true
    (Noisy_query.effective_epsilon s Mechanism.pure = s.Noisy_query.epsilon);
  (* A configured ε that already clears the floor passes through. *)
  let s' = Noisy_query.make ~owners:120 ~seed:11 ~dim:10 ~rounds:200 () in
  let unc' = Mechanism.with_uncertainty ~delta:s'.Noisy_query.delta in
  check_bool "large epsilon not floored" false
    (Noisy_query.epsilon_floored s' unc');
  check_bool "large epsilon passes through" true
    (Noisy_query.effective_epsilon s' unc' = s'.Noisy_query.epsilon)

let test_nq_one_dimensional () =
  (* The paper's Fig. 4(a) observation: at n = 1 the knowledge set
     starts as the interval [0, 2], the first exploratory price is 1 —
     exactly the reserve — and thereafter the reserve never binds, so
     the pure and reserve versions coincide. *)
  let s = Noisy_query.make ~owners:50 ~seed:3 ~dim:1 ~rounds:100 () in
  let pure = Noisy_query.run s Mechanism.pure in
  let reserve = Noisy_query.run s Mechanism.with_reserve in
  check_bool "identical regret curves" true
    (pure.Broker.total_regret = reserve.Broker.total_regret);
  (* At n = 1 every feature is the single normalized compensation sum,
     so reserves are exactly 1 and market values exactly √2. *)
  check_bool "reserve is 1" true
    (abs_float (reserve.Broker.reserve_stats.Dm_prob.Stats.mean -. 1.) < 1e-9);
  check_bool "market value is sqrt 2" true
    (abs_float
       (reserve.Broker.market_value_stats.Dm_prob.Stats.mean -. sqrt 2.)
    < 0.01)

let test_nq_validation () =
  check_bool "owners < dim rejected" true
    (match Noisy_query.make ~owners:5 ~seed:1 ~dim:10 ~rounds:100 () with
    | _ -> false
    | exception Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* App 2: accommodation rental                                         *)
(* ------------------------------------------------------------------ *)

let rental_setup = lazy (Rental.make ~rows:4000 ~seed:5 ())

let test_rental_fit () =
  let s = Lazy.force rental_setup in
  check_int "dim 55" 55 s.Rental.dim;
  check_bool "test mse comparable to paper's 0.226" true
    (s.Rental.test_mse > 0.05 && s.Rental.test_mse < 0.5);
  check_bool "radius covers theta" true
    (s.Rental.radius >= Vec.norm2 s.Rental.model.Model.theta)

let test_rental_workload () =
  let s = Lazy.force rental_setup in
  let w = Rental.workload s ~ratio:0.6 in
  for t = 0 to 99 do
    let x, reserve = w t in
    check_int "feature dim" 55 (Vec.dim x);
    let v = Model.value s.Rental.model x in
    check_bool "reserve below value" true (reserve <= v +. 1e-9);
    (* log q = 0.6·log v exactly. *)
    check_bool "log ratio" true (abs_float (log reserve -. (0.6 *. log v)) < 1e-9)
  done;
  check_bool "bad ratio rejected" true
    (match Rental.workload s ~ratio:1.5 with
    | (_ : int -> Vec.t * float) -> false
    | exception Invalid_argument _ -> true)

let test_rental_run () =
  let s = Lazy.force rental_setup in
  let ours = Rental.run ~ratio:0.6 s Mechanism.with_reserve in
  let baseline = Rental.run_baseline ~ratio:0.6 s in
  check_bool "every baseline round sells" true
    (baseline.Broker.accepted_rounds = s.Rental.rounds);
  check_bool "ratios sane" true
    (ours.Broker.regret_ratio > 0. && ours.Broker.regret_ratio < 1.);
  (* The baseline's ratio approximates 1 − E[q/v] > 10% for ratio 0.6
     on the unit log scale. *)
  check_bool "baseline pays the reserve gap" true
    (baseline.Broker.regret_ratio > 0.08)

let test_rental_baseline_ratio_ordering () =
  let s = Lazy.force rental_setup in
  let b r = (Rental.run_baseline ~ratio:r s).Broker.regret_ratio in
  let b4 = b 0.4 and b6 = b 0.6 and b8 = b 0.8 in
  (* Closer reserve → lower baseline regret (paper: 23.4 > 17.0 > 9.3). *)
  check_bool "baseline ordering" true (b4 > b6 && b6 > b8)

(* ------------------------------------------------------------------ *)
(* App 3: impression pricing                                           *)
(* ------------------------------------------------------------------ *)

let impression_setup =
  lazy (Impression.make ~train_rounds:30_000 ~seed:9 ~dim:64 ~rounds:8000 ())

let test_impression_sparsity () =
  let s = Lazy.force impression_setup in
  check_bool "sparse fit" true
    (s.Impression.theta_nonzeros >= 3 && s.Impression.theta_nonzeros <= 45);
  check_int "dense dim = nonzeros (or 1 floor)" s.Impression.theta_nonzeros
    s.Impression.dense_dim;
  check_bool "training converged below base entropy" true
    (s.Impression.train_log_loss < 0.5)

let test_impression_streams () =
  let s = Lazy.force impression_setup in
  check_int "sparse stream length" 8000 (Array.length s.Impression.sparse_stream);
  check_int "dense stream length" 8000 (Array.length s.Impression.dense_stream);
  Array.iteri
    (fun i x ->
      check_int "sparse dim" 64 (Vec.dim x);
      check_int "dense dim" s.Impression.dense_dim
        (Vec.dim s.Impression.dense_stream.(i)))
    s.Impression.sparse_stream;
  (* Dense features are the sparse ones restricted to the support, so
     both models agree on every market value. *)
  let sm = Impression.model s Impression.Sparse in
  let dm = Impression.model s Impression.Dense in
  Array.iteri
    (fun i xs ->
      let vs = Model.value sm xs in
      let vd = Model.value dm s.Impression.dense_stream.(i) in
      check_bool "values agree across cases" true (abs_float (vs -. vd) < 1e-9))
    s.Impression.sparse_stream

let test_impression_values_are_probabilities () =
  let s = Lazy.force impression_setup in
  let m = Impression.model s Impression.Sparse in
  Array.iter
    (fun x ->
      let v = Model.value m x in
      check_bool "ctr in (0,1)" true (v > 0. && v < 1.))
    s.Impression.sparse_stream

let test_impression_dense_converges_faster () =
  let s = Lazy.force impression_setup in
  let sparse = Impression.run s Impression.Sparse Mechanism.pure in
  let dense = Impression.run s Impression.Dense Mechanism.pure in
  (* Fig. 5(c): the dense case's regret ratio decreases faster. *)
  check_bool "dense beats sparse" true
    (dense.Broker.regret_ratio < sparse.Broker.regret_ratio);
  check_bool "dense explores less" true
    (dense.Broker.exploratory < sparse.Broker.exploratory)

(* ------------------------------------------------------------------ *)

let () = Test_env.install_pool_from_env ()

let () =
  Alcotest.run "dm_apps"
    [
      ( "noisy_query",
        [
          Alcotest.test_case "parameters" `Quick test_nq_parameters;
          Alcotest.test_case "workload properties" `Quick test_nq_workload_properties;
          Alcotest.test_case "market exceeds reserve" `Quick
            test_nq_market_exceeds_reserve;
          Alcotest.test_case "variant ordering" `Slow test_nq_variants_ordering;
          Alcotest.test_case "ratio declines" `Slow test_nq_regret_ratio_declines;
          Alcotest.test_case "uncertainty epsilon floor" `Quick
            test_nq_uncertainty_epsilon_floor;
          Alcotest.test_case "effective epsilon boundary" `Quick
            test_nq_effective_epsilon_boundary;
          Alcotest.test_case "one-dimensional interval" `Quick
            test_nq_one_dimensional;
          Alcotest.test_case "validation" `Quick test_nq_validation;
        ] );
      ( "rental",
        [
          Alcotest.test_case "fit" `Slow test_rental_fit;
          Alcotest.test_case "workload" `Slow test_rental_workload;
          Alcotest.test_case "run" `Slow test_rental_run;
          Alcotest.test_case "baseline ordering" `Slow
            test_rental_baseline_ratio_ordering;
        ] );
      ( "impression",
        [
          Alcotest.test_case "sparsity" `Slow test_impression_sparsity;
          Alcotest.test_case "streams" `Slow test_impression_streams;
          Alcotest.test_case "probabilities" `Slow
            test_impression_values_are_probabilities;
          Alcotest.test_case "dense converges faster" `Slow
            test_impression_dense_converges_faster;
        ] );
    ]
